"""Typed, bounded parameter spaces over scenario recipes.

A :class:`ParamSpace` describes the knobs the adversarial search is allowed
to turn — rack count, lasers/photodetectors per rack, arrival intensity,
weight skew, burst shape, speed augmentation, connectivity — as typed,
bounded :class:`Knob`\\ s, plus a *builder* that maps any in-bounds parameter
assignment to a valid, picklable :class:`~repro.scenarios.spec.Scenario`.

Three properties make the space safe to search:

* **closure** — :meth:`ParamSpace.sample`, :meth:`ParamSpace.mutate` and
  :meth:`ParamSpace.crossover` always produce assignments inside the knob
  bounds, and every in-bounds assignment builds a runnable scenario (the
  builders clamp derived quantities like burst gaps to their generators'
  validity ranges);
* **plain data** — assignments are ``{knob name: int | float | str}`` dicts
  of pure Python scalars, so they JSON round-trip exactly (checkpoints) and
  pickle verbatim into :class:`~repro.experiments.runner.ExperimentRunner`
  worker processes;
* **content-addressed identity** — :func:`candidate_key` /
  :func:`candidate_digest` derive a canonical identity from the assignment
  alone, so the same candidate always evaluates to the same scenario (and
  hence the same score) no matter which generation, process or resumed run
  encounters it.

Spaces are registered by name (:func:`register_space` / :func:`get_space`):
``adversarial`` searches the charging-argument stressor families at full
scenario scale, ``tiny`` generates ≤5-packet cells small enough for the
exact brute-force objective.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import SearchError
from repro.scenarios.spec import Scenario, TopologySpec, WorkloadSpec

__all__ = [
    "IntKnob",
    "FloatKnob",
    "ChoiceKnob",
    "Knob",
    "ParamSpace",
    "candidate_key",
    "candidate_digest",
    "register_space",
    "get_space",
    "space_names",
    "adversarial_space",
    "tiny_space",
]

ParamValue = Union[int, float, str]
Params = Dict[str, ParamValue]


# ---------------------------------------------------------------------- #
# knobs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class IntKnob:
    """An integer knob with inclusive bounds; mutation takes a bounded step."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise SearchError(f"knob {self.name!r}: low {self.low} > high {self.high}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mutate(self, value: ParamValue, rng: np.random.Generator) -> int:
        step = max(1, (self.high - self.low) // 4)
        moved = int(value) + int(rng.integers(-step, step + 1))
        return int(min(self.high, max(self.low, moved)))

    def validate(self, value: ParamValue) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise SearchError(f"knob {self.name!r} expects an int, got {value!r}")
        if not self.low <= value <= self.high:
            raise SearchError(
                f"knob {self.name!r} value {value} outside [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class FloatKnob:
    """A float knob with inclusive bounds; mutation adds clipped Gaussian noise."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise SearchError(f"knob {self.name!r}: low {self.low} > high {self.high}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mutate(self, value: ParamValue, rng: np.random.Generator) -> float:
        scale = (self.high - self.low) / 6.0 or 1e-9
        moved = float(value) + float(rng.normal(0.0, scale))
        return float(min(self.high, max(self.low, moved)))

    def validate(self, value: ParamValue) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SearchError(f"knob {self.name!r} expects a float, got {value!r}")
        if not self.low <= float(value) <= self.high:
            raise SearchError(
                f"knob {self.name!r} value {value} outside [{self.low}, {self.high}]"
            )


@dataclass(frozen=True)
class ChoiceKnob:
    """A categorical knob; mutation resamples uniformly from the choices."""

    name: str
    choices: Tuple[ParamValue, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise SearchError(f"knob {self.name!r} has no choices")

    def sample(self, rng: np.random.Generator) -> ParamValue:
        return self.choices[int(rng.integers(len(self.choices)))]

    def mutate(self, value: ParamValue, rng: np.random.Generator) -> ParamValue:
        return self.sample(rng)

    def validate(self, value: ParamValue) -> None:
        if value not in self.choices:
            raise SearchError(
                f"knob {self.name!r} value {value!r} not among {self.choices!r}"
            )


Knob = Union[IntKnob, FloatKnob, ChoiceKnob]


# ---------------------------------------------------------------------- #
# candidate identity
# ---------------------------------------------------------------------- #
def candidate_key(params: Mapping[str, ParamValue]) -> str:
    """Canonical JSON identity of a parameter assignment.

    Python's ``repr``-exact float serialisation makes this stable across JSON
    round trips, so a checkpointed candidate resumes under the same key.
    """
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


def candidate_digest(params: Mapping[str, ParamValue]) -> str:
    """Short content hash of an assignment (used in derived scenario names)."""
    return hashlib.sha1(candidate_key(params).encode("utf-8")).hexdigest()[:10]


# ---------------------------------------------------------------------- #
# scenario builders
# ---------------------------------------------------------------------- #
#: A builder maps (params, scenario name, seeds, policies) to a Scenario.
ScenarioBuilder = Callable[[Params, str, Tuple[int, ...], Tuple[str, ...]], Scenario]

_SCENARIO_BUILDERS: Dict[str, ScenarioBuilder] = {}


def _register_builder(name: str, builder: ScenarioBuilder) -> None:
    _SCENARIO_BUILDERS[name] = builder


# ---------------------------------------------------------------------- #
# the space
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParamSpace:
    """A named set of knobs plus the builder turning assignments into scenarios.

    Attributes
    ----------
    name:
        Registry key; also namespaces the scenario names the builder derives.
    knobs:
        The typed, bounded knobs (order defines crossover/mutation order).
    builder:
        Key into the module's builder registry (a string rather than a
        callable so the space itself pickles into worker processes).
    """

    name: str
    knobs: Tuple[Knob, ...]
    builder: str

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise SearchError(f"space {self.name!r} has duplicate knob names")
        if self.builder not in _SCENARIO_BUILDERS:
            raise SearchError(
                f"space {self.name!r} names unknown builder {self.builder!r}"
            )

    def knob(self, name: str) -> Knob:
        """Look up one knob by name."""
        for k in self.knobs:
            if k.name == name:
                return k
        raise SearchError(f"space {self.name!r} has no knob {name!r}")

    def sample(self, rng: np.random.Generator) -> Params:
        """Draw a uniform random in-bounds assignment."""
        return {k.name: k.sample(rng) for k in self.knobs}

    def validate(self, params: Mapping[str, ParamValue]) -> None:
        """Check that ``params`` assigns every knob an in-bounds value."""
        expected = {k.name for k in self.knobs}
        got = set(params)
        if expected != got:
            raise SearchError(
                f"assignment keys {sorted(got)} do not match space "
                f"{self.name!r} knobs {sorted(expected)}"
            )
        for k in self.knobs:
            k.validate(params[k.name])

    def mutate(
        self, params: Mapping[str, ParamValue], rng: np.random.Generator,
        rate: float = 0.4,
    ) -> Params:
        """Return a mutated copy of ``params`` (each knob perturbed with prob ``rate``).

        If no perturbation actually changed a value (low rate, or a choice
        resampled to itself), random knobs are re-perturbed — boundedly — so
        mutation practically never degenerates into the identity and the
        search keeps moving even at low rates.
        """
        parent = dict(params)
        child = dict(params)
        for k in self.knobs:
            if rng.random() < rate:
                child[k.name] = k.mutate(child[k.name], rng)
        attempts = 0
        while child == parent and attempts < 8:
            k = self.knobs[int(rng.integers(len(self.knobs)))]
            child[k.name] = k.mutate(child[k.name], rng)
            attempts += 1
        return child

    def crossover(
        self,
        a: Mapping[str, ParamValue],
        b: Mapping[str, ParamValue],
        rng: np.random.Generator,
    ) -> Params:
        """Uniform per-knob crossover of two parents."""
        return {k.name: (a if rng.random() < 0.5 else b)[k.name] for k in self.knobs}

    def build_scenario(
        self,
        params: Mapping[str, ParamValue],
        seeds: Tuple[int, ...] = (0,),
        policies: Tuple[str, ...] = ("alg", "fifo"),
        name: str = "",
    ) -> Scenario:
        """Materialise the assignment as a declarative scenario.

        The default name is content-addressed (``search-<space>-<digest>``),
        so the same candidate always names — and therefore seeds — the same
        scenario, whichever generation or process builds it.
        """
        self.validate(params)
        scenario_name = name or f"search-{self.name}-{candidate_digest(params)}"
        return _SCENARIO_BUILDERS[self.builder](
            dict(params), scenario_name, tuple(seeds), tuple(policies)
        )


# ---------------------------------------------------------------------- #
# the adversarial builder (full scenario scale)
# ---------------------------------------------------------------------- #
def _intensity_gap(intensity: float, base: float = 12.0, floor: int = 2) -> int:
    """Map an arrival-intensity knob to an inter-burst gap (higher = denser)."""
    return max(floor, int(round(base / max(intensity, 1e-9))))


def _adversarial_builder(
    params: Params, name: str, seeds: Tuple[int, ...], policies: Tuple[str, ...]
) -> Scenario:
    topology = TopologySpec(
        "projector",
        {
            "num_racks": params["num_racks"],
            "lasers_per_rack": params["lasers_per_rack"],
            "photodetectors_per_rack": params["photodetectors_per_rack"],
            "connectivity": round(float(params["connectivity"]), 6),
        },
    )
    kind = params["kind"]
    intensity = float(params["intensity"])
    skew = float(params["skew"])
    burst = int(params["burst"])
    if kind == "priority-inversion":
        workload = WorkloadSpec(
            "priority-inversion",
            {
                "num_bursts": 8,
                "light_per_burst": burst,
                "heavy_per_burst": max(1, burst // 2),
                "light_weight": (1.0, 2.0),
                "heavy_weight": (round(20.0 * skew, 6), round(40.0 * skew, 6)),
                "burst_gap": _intensity_gap(intensity),
            },
        )
    elif kind == "contention-hotspot":
        workload = WorkloadSpec(
            "contention-hotspot",
            {
                "num_packets": 10 * burst,
                "side": params["side"],
                "hot_fraction": round(float(params["focus"]), 6),
                "arrival_rate": round(intensity, 6),
            },
            weights=("pareto", round(skew, 6)),
        )
    elif kind == "heavy-tailed-incast":
        workload = WorkloadSpec(
            "heavy-tailed-incast",
            {
                "num_waves": 6,
                "senders_per_wave": burst,
                "packets_per_sender": 2,
                "wave_gap": _intensity_gap(intensity, base=10.0),
                "pareto_exponent": round(max(skew, 1.05), 6),
            },
        )
    else:  # pragma: no cover - the kind knob enumerates exactly these three
        raise SearchError(f"unknown adversarial workload kind {kind!r}")
    return Scenario(
        name=name,
        description=f"searched {kind} stressor ({candidate_digest(params)})",
        topology=topology,
        workload=workload,
        policies=policies,
        speed=float(params["speed"]),
        seeds=seeds,
        tags=("adversarial", "searched"),
    )


_register_builder("adversarial-v1", _adversarial_builder)


def adversarial_space(speeds: Sequence[float] = (1.0,)) -> ParamSpace:
    """The full-scale stressor space (empirical-ratio objective).

    Knobs cover the axes the ROADMAP names: fabric shape (rack count, lasers
    and photodetectors per rack, connectivity), arrival intensity, weight
    skew, burst shape and speed augmentation.  The hand-derived registry
    stressors all correspond to interior points of this space, which is what
    lets the search rediscover (and then outdo) them.
    """
    return ParamSpace(
        name="adversarial",
        knobs=(
            ChoiceKnob("kind", ("priority-inversion", "contention-hotspot",
                                "heavy-tailed-incast")),
            ChoiceKnob("side", ("transmitter", "receiver")),
            IntKnob("num_racks", 3, 6),
            IntKnob("lasers_per_rack", 1, 3),
            IntKnob("photodetectors_per_rack", 1, 3),
            FloatKnob("connectivity", 0.5, 1.0),
            FloatKnob("intensity", 1.0, 6.0),
            FloatKnob("focus", 0.6, 0.95),
            FloatKnob("skew", 1.1, 3.0),
            IntKnob("burst", 2, 8),
            ChoiceKnob("speed", tuple(float(s) for s in speeds)),
        ),
        builder="adversarial-v1",
    )


# ---------------------------------------------------------------------- #
# the tiny builder (exact brute-force objective)
# ---------------------------------------------------------------------- #
def _tiny_builder(
    params: Params, name: str, seeds: Tuple[int, ...], policies: Tuple[str, ...]
) -> Scenario:
    topology = TopologySpec(
        "projector",
        {
            "num_racks": params["num_racks"],
            "lasers_per_rack": params["lasers_per_rack"],
            "photodetectors_per_rack": params["photodetectors_per_rack"],
        },
    )
    kind = params["kind"]
    skew = round(max(float(params["skew"]), 1.05), 6)
    if kind == "priority-inversion":
        workload = WorkloadSpec(
            "priority-inversion",
            {
                "num_bursts": 1,
                "light_per_burst": int(params["burst"]),
                "heavy_per_burst": 1,
                "heavy_weight": (round(20.0 * skew, 6), round(40.0 * skew, 6)),
                "burst_gap": 4,
            },
        )
    elif kind == "contention-hotspot":
        workload = WorkloadSpec(
            "contention-hotspot",
            {
                "num_packets": int(params["burst"]) + 2,
                "side": params["side"],
                "hot_fraction": 0.9,
                "arrival_rate": round(float(params["intensity"]), 6),
            },
            weights=("pareto", skew),
        )
    elif kind == "heavy-tailed-incast":
        workload = WorkloadSpec(
            "heavy-tailed-incast",
            {
                "num_waves": 2,
                "senders_per_wave": int(params["burst"]),
                "packets_per_sender": 1,
                "wave_gap": 3,
                "pareto_exponent": skew,
            },
        )
    else:  # pragma: no cover - the kind knob enumerates exactly these three
        raise SearchError(f"unknown tiny workload kind {kind!r}")
    return Scenario(
        name=name,
        description=f"searched tiny {kind} cell ({candidate_digest(params)})",
        topology=topology,
        workload=workload,
        policies=policies,
        speed=float(params["speed"]),
        seeds=seeds,
        tags=("adversarial", "searched", "tiny"),
        max_slots=10_000,
    )


_register_builder("tiny-v1", _tiny_builder)


def tiny_space() -> ParamSpace:
    """A ≤5-packet cell space sized for the exact brute-force objective."""
    return ParamSpace(
        name="tiny",
        knobs=(
            ChoiceKnob("kind", ("priority-inversion", "contention-hotspot",
                                "heavy-tailed-incast")),
            ChoiceKnob("side", ("transmitter", "receiver")),
            IntKnob("num_racks", 2, 3),
            IntKnob("lasers_per_rack", 1, 2),
            IntKnob("photodetectors_per_rack", 1, 2),
            FloatKnob("intensity", 1.0, 4.0),
            FloatKnob("skew", 1.2, 3.0),
            IntKnob("burst", 2, 3),
            ChoiceKnob("speed", (1.0,)),
        ),
        builder="tiny-v1",
    )


# ---------------------------------------------------------------------- #
# space registry
# ---------------------------------------------------------------------- #
_SPACES: Dict[str, Callable[[], ParamSpace]] = {}


def register_space(name: str, factory: Callable[[], ParamSpace]) -> None:
    """Register a named space factory (shows up in ``repro search list``)."""
    _SPACES[name] = factory


def get_space(name: str) -> ParamSpace:
    """Construct the named space."""
    try:
        factory = _SPACES[name]
    except KeyError:
        raise SearchError(
            f"unknown search space {name!r}; choose from {sorted(_SPACES)}"
        ) from None
    return factory()


def space_names() -> List[str]:
    """Names of all registered spaces."""
    return sorted(_SPACES)


register_space("adversarial", adversarial_space)
register_space("tiny", tiny_space)
