"""The generational adversarial search driver.

:class:`AdversarialSearch` runs a deterministic, seedable evolutionary loop
over a :class:`~repro.search.space.ParamSpace`:

1. **Initialise** — generation 0 is sampled uniformly from the space.
2. **Evaluate** — unevaluated candidates become one experiment-runner task
   each (fanned over ``--jobs`` worker processes); already-seen candidates
   reuse their cached score, so re-visiting a region is free.
3. **Archive** — the hall of fame keeps the ``hall_of_fame_size`` best
   distinct candidates ever evaluated (ties broken by candidate key, so the
   archive is a pure function of the evaluated set).
4. **Select & vary** — elites survive verbatim; the rest of the next
   generation is bred by tournament selection, uniform crossover and bounded
   mutation.
5. **Stop** — after ``generations`` rounds, or earlier when the best score
   has not improved for ``stagnation_limit`` consecutive generations.

Determinism is the load-bearing property.  Every random draw comes from a
:class:`~repro.utils.rng.SeedSequenceFactory` child stream keyed by *role*
(``init``/``select``/``mutate``), generation and slot index — never from
evaluation timing — and evaluation rows return in grid order regardless of
worker interleaving, so ``jobs=1`` and ``jobs=N`` produce bit-identical
hall-of-fame archives.  The same keying makes checkpoint/resume exact: the
JSONL checkpoint stores populations, scores and the archive (plain data);
resuming re-derives the RNG streams for the remaining generations from the
same keys and continues as if the run had never stopped.
"""

from __future__ import annotations

import json
import time
from contextlib import ExitStack
from dataclasses import dataclass, replace
from pathlib import Path
from typing import IO, Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import SearchError
from repro.experiments.runner import ExperimentRunner, ExperimentSpec, ExperimentTask, RunnerConfig
from repro.obs import MetricsWriter
from repro.search.objective import (
    Objective,
    ObjectiveResult,
    objective_from_json,
    objective_to_json,
)
from repro.search.space import ParamSpace, Params, candidate_key, get_space
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "SearchConfig",
    "HallOfFameEntry",
    "SearchResult",
    "AdversarialSearch",
    "resume_search",
    "read_checkpoint",
    "BUDGETS",
]


@dataclass(frozen=True)
class SearchConfig:
    """Tuning knobs of one :class:`AdversarialSearch` run.

    Attributes
    ----------
    population_size, generations:
        Candidates per generation and number of generations (generation 0
        included).
    elite:
        Best candidates copied verbatim into the next generation.
    tournament:
        Tournament size of the parent selection.
    crossover_rate, mutation_rate:
        Probability of breeding a child from two parents (vs cloning one),
        and the per-knob perturbation probability of the mutation pass.
    hall_of_fame_size:
        Distinct candidates kept in the archive.
    stagnation_limit:
        Early-stop after this many generations without improvement
        (``0`` disables early stopping).
    replicate_seeds:
        Cell seeds every candidate is replicated over (the objective's
        confidence filter takes the minimum across them).
    seed:
        Root seed of every init/select/mutate stream.
    jobs, chunksize:
        Experiment-runner fan-out for candidate evaluation (results are
        identical for any values).
    """

    population_size: int = 12
    generations: int = 8
    elite: int = 2
    tournament: int = 3
    crossover_rate: float = 0.6
    mutation_rate: float = 0.4
    hall_of_fame_size: int = 5
    stagnation_limit: int = 0
    replicate_seeds: Tuple[int, ...] = (0, 1)
    seed: int = 0
    jobs: int = 1
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise SearchError(f"population_size must be >= 2, got {self.population_size}")
        if self.generations < 1:
            raise SearchError(f"generations must be >= 1, got {self.generations}")
        if not 0 <= self.elite < self.population_size:
            raise SearchError(
                f"elite must lie in [0, population_size), got {self.elite}"
            )
        if self.tournament < 1:
            raise SearchError(f"tournament must be >= 1, got {self.tournament}")
        if not self.replicate_seeds:
            raise SearchError("replicate_seeds must be non-empty")
        if self.jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunksize < 1:
            raise SearchError(f"chunksize must be >= 1, got {self.chunksize}")


#: Named budgets exposed by ``repro search run --budget``.
BUDGETS: Dict[str, SearchConfig] = {
    "smoke": SearchConfig(population_size=8, generations=6),
    "default": SearchConfig(population_size=16, generations=10),
    "full": SearchConfig(
        population_size=24, generations=20, hall_of_fame_size=10, stagnation_limit=6
    ),
}


@dataclass(frozen=True)
class HallOfFameEntry:
    """One archived candidate: its assignment, identity and measurement."""

    key: str
    params: Params
    score: float
    ratios: Tuple[float, ...]
    mean_ratio: float
    scenario_name: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "params": dict(self.params),
            "score": self.score,
            "ratios": list(self.ratios),
            "mean_ratio": self.mean_ratio,
            "scenario_name": self.scenario_name,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "HallOfFameEntry":
        return cls(
            key=data["key"],
            params=dict(data["params"]),
            score=float(data["score"]),
            ratios=tuple(float(r) for r in data["ratios"]),
            mean_ratio=float(data["mean_ratio"]),
            scenario_name=data["scenario_name"],
        )


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a finished (or early-stopped) search."""

    hall_of_fame: Tuple[HallOfFameEntry, ...]
    generations_run: int
    best_history: Tuple[float, ...]
    evaluations: int
    stopped_early: bool

    @property
    def best(self) -> HallOfFameEntry:
        """The single best candidate found."""
        if not self.hall_of_fame:
            raise SearchError("search produced an empty hall of fame")
        return self.hall_of_fame[0]


# ---------------------------------------------------------------------- #
# worker-side evaluation
# ---------------------------------------------------------------------- #
def _evaluate_candidate_task(task: ExperimentTask) -> Dict[str, Any]:
    """One runner task: build the candidate's scenario and score it.

    Module-level (hence picklable); everything it needs travels in the task
    params.  The scenario is content-addressed by the candidate assignment,
    so the same candidate scores identically in any process or session.
    """
    space: ParamSpace = task.params["space"]
    objective: Objective = task.params["objective"]
    params: Params = task.params["candidate"]
    seeds: Tuple[int, ...] = task.params["replicate_seeds"]
    scenario = space.build_scenario(
        params, seeds=seeds, policies=objective.scenario_policies()
    )
    result = objective.evaluate(scenario)
    return {
        "key": candidate_key(params),
        "params": dict(params),
        "score": result.score,
        "ratios": list(result.ratios),
        "mean_ratio": result.mean_ratio,
        "scenario_name": scenario.name,
    }


# ---------------------------------------------------------------------- #
# checkpoint IO
# ---------------------------------------------------------------------- #
def _config_to_json(config: SearchConfig) -> Dict[str, Any]:
    return {
        "population_size": config.population_size,
        "generations": config.generations,
        "elite": config.elite,
        "tournament": config.tournament,
        "crossover_rate": config.crossover_rate,
        "mutation_rate": config.mutation_rate,
        "hall_of_fame_size": config.hall_of_fame_size,
        "stagnation_limit": config.stagnation_limit,
        "replicate_seeds": list(config.replicate_seeds),
        "seed": config.seed,
        "jobs": config.jobs,
        "chunksize": config.chunksize,
    }


def _config_from_json(data: Dict[str, Any]) -> SearchConfig:
    payload = dict(data)
    payload["replicate_seeds"] = tuple(payload["replicate_seeds"])
    return SearchConfig(**payload)


class _CheckpointWriter:
    """Context manager owning a search-checkpoint JSONL handle.

    Every write — including the initial meta record — happens inside the
    managed scope, so an exception anywhere (an objective raising
    mid-generation included) still closes the handle instead of leaking it,
    and every fully written generation line stays parseable for ``resume``.
    Each record is written as one line and flushed immediately: a failing
    run can lose at most the record being written, never truncate earlier
    ones.
    """

    def __init__(self, path: Union[str, Path], mode: str) -> None:
        self._path = Path(path)
        self._mode = mode
        self._handle: Optional[IO[str]] = None

    def __enter__(self) -> "_CheckpointWriter":
        self._handle = self._path.open(self._mode, encoding="utf-8")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append ``record`` as one flushed JSON line."""
        assert self._handle is not None, "checkpoint writer used outside its scope"
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()


def read_checkpoint(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a search checkpoint into ``{"meta": …, "generations": […]}``."""
    path = Path(path)
    if not path.is_file():
        raise SearchError(f"checkpoint {path} does not exist")
    # Several meta records may appear (a resume that extends the budget
    # appends an updated one); the last wins, like the generation records.
    meta: Optional[Dict[str, Any]] = None
    generations: List[Dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SearchError(
                    f"checkpoint {path}:{line_number} is not valid JSON: {exc}"
                ) from exc
            if record.get("type") == "meta":
                meta = record
            elif record.get("type") == "generation":
                generations.append(record)
            else:
                raise SearchError(
                    f"checkpoint {path}:{line_number} has unknown record type "
                    f"{record.get('type')!r}"
                )
    if meta is None:
        raise SearchError(f"checkpoint {path} has no meta record")
    return {"meta": meta, "generations": generations}


# ---------------------------------------------------------------------- #
# the driver
# ---------------------------------------------------------------------- #
class AdversarialSearch:
    """Deterministic generational search for ALG's empirical worst cases."""

    def __init__(
        self,
        space: ParamSpace,
        objective: Objective,
        config: Optional[SearchConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.space = space
        self.objective = objective
        self.config = config or SearchConfig()
        self._seeds = SeedSequenceFactory(self.config.seed)
        # Injectable wall clock, used only for heartbeat evals/s reporting —
        # never for any search decision (determinism would break otherwise).
        self._clock = clock

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        checkpoint_path: Optional[Union[str, Path]] = None,
        metrics_path: Optional[Union[str, Path]] = None,
    ) -> SearchResult:
        """Run the search from scratch (truncating any existing checkpoint).

        ``metrics_path`` streams one ``{"record": "search_heartbeat"}`` JSONL
        line per generation (best score, archive size, evals/s) so long
        searches are observable from outside the process; heartbeats never
        influence the search itself.
        """
        with ExitStack() as stack:
            checkpoint = None
            if checkpoint_path is not None:
                checkpoint = stack.enter_context(
                    _CheckpointWriter(checkpoint_path, "w")
                )
                checkpoint.write_record(self._meta_record())
            metrics = None
            if metrics_path is not None:
                metrics = stack.enter_context(MetricsWriter(metrics_path, mode="w"))
            return self._drive(
                start_generation=0,
                population=None,
                scores={},
                hall_of_fame=[],
                best_history=[],
                checkpoint=checkpoint,
                metrics=metrics,
            )

    def resume(
        self,
        checkpoint_path: Union[str, Path],
        generations: Optional[int] = None,
        metrics_path: Optional[Union[str, Path]] = None,
    ) -> SearchResult:
        """Continue a checkpointed run (optionally extending ``generations``).

        The continuation is bit-identical to a run that never stopped: all
        variation RNG streams are re-derived from (seed, role, generation,
        slot) keys, and the evaluated-score cache is replayed from the
        checkpoint, so no candidate is re-simulated.
        """
        state = read_checkpoint(checkpoint_path)
        if not state["generations"]:
            raise SearchError(
                f"checkpoint {checkpoint_path} holds no finished generation"
            )
        if generations is not None:
            self.config = replace(self.config, generations=generations)
        last = state["generations"][-1]
        scores: Dict[str, ObjectiveResult] = {}
        names: Dict[str, str] = {}
        best_history: List[float] = []
        for record in state["generations"]:
            best_history.append(float(record["best_score"]))
            for key, row in record["evaluations"].items():
                scores[key] = ObjectiveResult(
                    score=float(row["score"]),
                    ratios=tuple(float(r) for r in row["ratios"]),
                    mean_ratio=float(row["mean_ratio"]),
                )
                names[key] = row["scenario_name"]
        hall_of_fame = [
            HallOfFameEntry.from_json(entry) for entry in last["hall_of_fame"]
        ]
        population = [dict(p) for p in last["population"]]
        with ExitStack() as stack:
            checkpoint = stack.enter_context(_CheckpointWriter(checkpoint_path, "a"))
            if generations is not None:
                # Persist the extended budget: a later resume (e.g. after this
                # continuation is interrupted) must see the new target, not the
                # original one, or it would stop short without a word.
                checkpoint.write_record(self._meta_record())
            metrics = None
            if metrics_path is not None:
                # Append: the continuation's heartbeats extend the original
                # run's stream instead of erasing it.
                metrics = stack.enter_context(MetricsWriter(metrics_path, mode="a"))
            return self._drive(
                start_generation=int(last["generation"]) + 1,
                population=population,
                scores=scores,
                hall_of_fame=hall_of_fame,
                best_history=best_history,
                checkpoint=checkpoint,
                scenario_names=names,
                metrics=metrics,
            )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _meta_record(self) -> Dict[str, Any]:
        return {
            "type": "meta",
            "space": self.space.name,
            "objective": objective_to_json(self.objective),
            "config": _config_to_json(self.config),
        }

    def _initial_population(self) -> List[Params]:
        rng_of = lambda i: self._seeds.generator("init", i)  # noqa: E731
        return [
            self.space.sample(rng_of(i)) for i in range(self.config.population_size)
        ]

    def _evaluate(
        self,
        generation: int,
        population: Sequence[Params],
        scores: Dict[str, ObjectiveResult],
        scenario_names: Dict[str, str],
    ) -> Dict[str, Any]:
        """Score every unseen candidate of ``population`` (cached ones are free)."""
        pending: List[Params] = []
        seen: set = set()
        for params in population:
            key = candidate_key(params)
            if key not in scores and key not in seen:
                pending.append(params)
                seen.add(key)
        new_rows: Dict[str, Any] = {}
        if pending:
            spec = ExperimentSpec(
                name=f"search-{self.space.name}-gen{generation}",
                task_fn=_evaluate_candidate_task,
                grid=[
                    {
                        "space": self.space,
                        "objective": self.objective,
                        "candidate": params,
                        "replicate_seeds": self.config.replicate_seeds,
                    }
                    for params in pending
                ],
                seed=self.config.seed,
            )
            runner = ExperimentRunner(
                RunnerConfig(jobs=self.config.jobs, chunksize=self.config.chunksize)
            )
            for row in runner.run(spec):
                scores[row["key"]] = ObjectiveResult(
                    score=float(row["score"]),
                    ratios=tuple(float(r) for r in row["ratios"]),
                    mean_ratio=float(row["mean_ratio"]),
                )
                scenario_names[row["key"]] = row["scenario_name"]
                new_rows[row["key"]] = {
                    "params": dict(row["params"]),
                    "score": float(row["score"]),
                    "ratios": list(row["ratios"]),
                    "mean_ratio": float(row["mean_ratio"]),
                    "scenario_name": row["scenario_name"],
                }
        return new_rows

    def _update_hall_of_fame(
        self,
        hall_of_fame: List[HallOfFameEntry],
        population: Sequence[Params],
        scores: Dict[str, ObjectiveResult],
        scenario_names: Dict[str, str],
    ) -> List[HallOfFameEntry]:
        merged: Dict[str, HallOfFameEntry] = {e.key: e for e in hall_of_fame}
        for params in population:
            key = candidate_key(params)
            result = scores[key]
            if key not in merged:
                merged[key] = HallOfFameEntry(
                    key=key,
                    params=dict(params),
                    score=result.score,
                    ratios=result.ratios,
                    mean_ratio=result.mean_ratio,
                    scenario_name=scenario_names[key],
                )
        # Rank by the filtered score, then mean ratio (so candidates tied at
        # the minimum are separated by their typical badness), then candidate
        # key — a total order, hence a jobs-independent archive.
        ranked = sorted(merged.values(), key=lambda e: (-e.score, -e.mean_ratio, e.key))
        return ranked[: self.config.hall_of_fame_size]

    def _next_generation(
        self,
        generation: int,
        population: Sequence[Params],
        scores: Dict[str, ObjectiveResult],
    ) -> List[Params]:
        """Breed the next generation (elitism + tournament + crossover + mutation)."""
        cfg = self.config

        def fitness(p: Params) -> Tuple[float, float, str]:
            key = candidate_key(p)
            result = scores[key]
            return (result.score, result.mean_ratio, key)

        ranked = sorted(
            population,
            key=lambda p: (-fitness(p)[0], -fitness(p)[1], fitness(p)[2]),
        )
        children: List[Params] = [dict(p) for p in ranked[: cfg.elite]]

        def tournament(rng) -> Params:
            contestants = [
                population[int(rng.integers(len(population)))]
                for _ in range(cfg.tournament)
            ]
            return max(contestants, key=fitness)

        for slot in range(cfg.population_size - len(children)):
            select_rng = self._seeds.generator("select", generation, slot)
            mutate_rng = self._seeds.generator("mutate", generation, slot)
            mother = tournament(select_rng)
            if select_rng.random() < cfg.crossover_rate:
                father = tournament(select_rng)
                child = self.space.crossover(mother, father, select_rng)
            else:
                child = dict(mother)
            children.append(self.space.mutate(child, mutate_rng, cfg.mutation_rate))
        return children

    def _drive(
        self,
        start_generation: int,
        population: Optional[List[Params]],
        scores: Dict[str, ObjectiveResult],
        hall_of_fame: List[HallOfFameEntry],
        best_history: List[float],
        checkpoint,
        scenario_names: Optional[Dict[str, str]] = None,
        metrics: Optional[MetricsWriter] = None,
    ) -> SearchResult:
        cfg = self.config
        names: Dict[str, str] = scenario_names or {}
        stopped_early = False
        generation = start_generation - 1
        started = self._clock()
        evals_this_run = 0
        if start_generation > 0 and population is not None:
            # Resuming: the checkpointed population was already evaluated;
            # breed the next generation from it before continuing the loop.
            population = self._next_generation(
                start_generation - 1, population, scores
            )
        elif population is None:
            population = self._initial_population()

        for generation in range(start_generation, cfg.generations):
            new_rows = self._evaluate(generation, population, scores, names)
            hall_of_fame = self._update_hall_of_fame(
                hall_of_fame, population, scores, names
            )
            best = hall_of_fame[0].score if hall_of_fame else 0.0
            best_history.append(best)
            if checkpoint is not None:
                checkpoint.write_record(
                    {
                        "type": "generation",
                        "generation": generation,
                        "population": [dict(p) for p in population],
                        "evaluations": new_rows,
                        "hall_of_fame": [e.to_json() for e in hall_of_fame],
                        "best_score": best,
                    }
                )
            if metrics is not None:
                evals_this_run += len(new_rows)
                elapsed = self._clock() - started
                metrics.write(
                    {
                        "record": "search_heartbeat",
                        "generation": generation,
                        "best_score": best,
                        "archive_size": len(hall_of_fame),
                        "new_evaluations": len(new_rows),
                        "evaluations_total": len(scores),
                        "evals_per_s": round(evals_this_run / elapsed, 6)
                        if elapsed > 0
                        else 0.0,
                    }
                )
            if (
                cfg.stagnation_limit > 0
                and len(best_history) > cfg.stagnation_limit
                and best <= best_history[-cfg.stagnation_limit - 1] + 1e-12
            ):
                stopped_early = True
                break
            if generation + 1 < cfg.generations:
                population = self._next_generation(generation, population, scores)

        return SearchResult(
            hall_of_fame=tuple(hall_of_fame),
            generations_run=generation + 1,
            best_history=tuple(best_history),
            evaluations=len(scores),
            stopped_early=stopped_early,
        )


def resume_search(
    checkpoint_path: Union[str, Path],
    generations: Optional[int] = None,
    jobs: Optional[int] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> Tuple[AdversarialSearch, SearchResult]:
    """Reconstruct a search from its checkpoint metadata and continue it.

    The space, objective and config all come from the checkpoint's meta
    record; ``generations`` and ``jobs`` optionally override the stored
    budget (``jobs`` never affects results, only wall-clock).
    """
    state = read_checkpoint(checkpoint_path)
    meta = state["meta"]
    config = _config_from_json(meta["config"])
    if jobs is not None:
        config = replace(config, jobs=jobs)
    search = AdversarialSearch(
        space=get_space(meta["space"]),
        objective=objective_from_json(meta["objective"]),
        config=config,
    )
    return search, search.resume(
        checkpoint_path, generations=generations, metrics_path=metrics_path
    )
