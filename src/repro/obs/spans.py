"""Named wall-clock span accumulation with an injectable clock.

:class:`SpanTimer` is the single timing primitive of the observability
layer: it accumulates total seconds and an invocation count per span name.
Two call styles cover every use in the repository:

* ``start()`` / ``stop(name, start)`` — two calls around a hot block, the
  style the engine uses for its slot-sampled phase spans and the profiling
  proxies use around dispatcher/scheduler calls;
* ``with timer.span("phase"):`` — the convenient context-manager form for
  non-hot-path callers.

The clock is injected (default :func:`time.perf_counter`) so tests drive
spans with a fake clock and assert exact totals.  The legacy
:class:`~repro.simulation.profiling.PhaseTimings` is now a thin adapter over
one of these timers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator

__all__ = ["SpanTimer"]


class SpanTimer:
    """Accumulates ``(total seconds, count)`` per span name."""

    __slots__ = ("totals", "counts", "_clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._clock = clock

    def start(self) -> float:
        """A raw clock reading, to be passed to :meth:`stop`."""
        return self._clock()

    def stop(self, name: str, start: float) -> float:
        """Close a span opened at ``start``; returns the elapsed seconds."""
        elapsed = self._clock() - start
        self.add(name, elapsed)
        return elapsed

    def add(self, name: str, seconds: float) -> None:
        """Fold externally measured ``seconds`` into span ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager form: times the managed block into ``name``."""
        begin = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - begin)

    def total(self, name: str) -> float:
        """Accumulated seconds of span ``name`` (0.0 when never recorded)."""
        return self.totals.get(name, 0.0)

    def set_total(self, name: str, seconds: float) -> None:
        """Overwrite span ``name``'s total without touching its count.

        The hook the :class:`~repro.simulation.profiling.PhaseTimings`
        adapter needs for its writable ``*_s`` attributes.
        """
        self.totals[name] = seconds
        self.counts.setdefault(name, 0)

    def reset(self) -> None:
        """Forget every span."""
        self.totals.clear()
        self.counts.clear()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{name: {"total_s", "count"}}`` in sorted span-name order."""
        return {
            name: {"total_s": self.totals[name], "count": self.counts[name]}
            for name in sorted(self.totals)
        }
