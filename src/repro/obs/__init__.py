"""Unified observability layer: metrics registry, span timing, JSONL emission.

Three small pieces compose into every instrumentation path in the
repository:

* :class:`~repro.obs.registry.MetricsRegistry` — deterministic labeled
  counters/gauges/histograms with a plain-dict snapshot, and its zero-cost
  twin :data:`~repro.obs.registry.NULL_REGISTRY` used whenever observability
  is off;
* :class:`~repro.obs.spans.SpanTimer` — named wall-clock span accumulation
  with an injectable clock (the primitive under the legacy
  :class:`~repro.simulation.profiling.PhaseTimings` adapter);
* :class:`~repro.obs.writer.MetricsWriter` — flushed utf-8 JSONL emission
  for snapshots and progress heartbeats, read back via
  :func:`~repro.obs.writer.iter_metric_records`.

Instruments record; they never influence the instrumented code.  That is
what lets the simulation engine promise bit-identical summaries with
observability enabled or disabled.
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    log_spaced_buckets,
)
from repro.obs.spans import SpanTimer
from repro.obs.writer import MetricsWriter, iter_metric_records, read_metric_records

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "log_spaced_buckets",
    "SpanTimer",
    "MetricsWriter",
    "iter_metric_records",
    "read_metric_records",
]
