"""Deterministic in-process metrics registry.

A :class:`MetricsRegistry` hands out *labeled series* of three instrument
kinds — :class:`Counter` (monotone event counts), :class:`Gauge` (last-value
/ high-water readings) and :class:`Histogram` (fixed log-spaced buckets) —
and renders them all as one plain-dict :meth:`~MetricsRegistry.snapshot`.

Determinism is the design constraint, mirroring the rest of the repository:

* a snapshot is a pure function of the *operations applied*, never of wall
  clock, insertion timing or dict iteration order (series are emitted in
  sorted ``name{labels}`` order, and histogram bucket boundaries are fixed
  at construction);
* instruments only ever *record* — they cannot influence the instrumented
  code, which is what lets the engine promise bit-identical summaries with
  observability on or off.

The **no-op fast path**: :data:`NULL_REGISTRY` is a module-singleton
:class:`NullRegistry` whose instrument accessors return shared do-nothing
instruments.  Callers resolve their instruments once at setup time, so a
disabled run performs no per-event allocations at all — each hot-path hook
is a single attribute read plus a no-op method call (or is skipped outright
behind one boolean, which is how the engine guards its per-packet counters).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "log_spaced_buckets",
]


def log_spaced_buckets(
    start: float = 1e-6, stop: float = 1e4, per_decade: int = 2
) -> Tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds, ``start`` … ``stop``.

    Bounds are ``10**(k / per_decade)`` for consecutive integers ``k``; the
    computation is closed-form per bound (no running products), so the exact
    float boundaries never depend on how many buckets precede them.
    """
    if start <= 0 or stop <= start:
        raise ObservabilityError(
            f"bucket range must satisfy 0 < start < stop, got [{start}, {stop}]"
        )
    if per_decade < 1:
        raise ObservabilityError(f"per_decade must be >= 1, got {per_decade}")
    first = math.ceil(round(math.log10(start) * per_decade, 9))
    last = math.floor(round(math.log10(stop) * per_decade, 9))
    return tuple(10.0 ** (k / per_decade) for k in range(first, last + 1))


#: Default bucket bounds shared by every histogram that does not override
#: them: half-decade steps from one microsecond/chunk to ten thousand.
DEFAULT_BUCKETS = log_spaced_buckets()


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, label_key: Tuple[Tuple[str, str], ...]) -> str:
    if not label_key:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{rendered}}}"


class Counter:
    """Monotone event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """Last-value instrument with a high-water helper."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value

    def set_max(self, value: float) -> None:
        """Keep the running maximum of the observed values."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with exact count/sum side channels.

    ``buckets`` are ascending upper bounds; one overflow bucket catches
    everything above the last bound.  ``observe`` is a single C-level bisect
    plus two adds, cheap enough for per-slot hot-path use.
    """

    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(DEFAULT_BUCKETS if buckets is None else buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ObservabilityError(
                f"histogram buckets must be non-empty and strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value


class MetricsRegistry:
    """Factory and store for labeled metric series.

    ``counter(name, **labels)`` (and friends) return the *same* instrument
    object for the same ``(name, labels)`` pair, so call sites may either
    cache the instrument or re-resolve it each time; requesting an existing
    series with a different instrument kind raises
    :class:`~repro.exceptions.ObservabilityError`.
    """

    #: Whether instruments from this registry record anything.  Hot paths may
    #: hoist this single boolean to skip instrumentation blocks wholesale.
    enabled = True

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Tuple[str, Any]] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, Any], factory) -> Any:
        key = (name, _label_key(labels))
        entry = self._series.get(key)
        if entry is None:
            instrument = factory()
            self._series[key] = (kind, instrument)
            return instrument
        existing_kind, instrument = entry
        if existing_kind != kind:
            raise ObservabilityError(
                f"metric series {_series_name(*key)!r} is a {existing_kind}, "
                f"requested as a {kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter series ``name`` at ``labels`` (created on first use)."""
        return self._get("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge series ``name`` at ``labels`` (created on first use)."""
        return self._get("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        """The histogram series ``name`` at ``labels`` (created on first use)."""
        return self._get("histogram", name, labels, lambda: Histogram(buckets))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All series as one JSON-ready dict, in sorted series order.

        Shape: ``{"counters": {series: value}, "gauges": {series: value},
        "histograms": {series: {"count", "sum", "buckets", "counts"}}}``.
        A pure function of the operations applied to the registry.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for key in sorted(self._series):
            kind, instrument = self._series[key]
            series = _series_name(*key)
            if kind == "counter":
                counters[series] = instrument.value
            elif kind == "gauge":
                gauges[series] = instrument.value
            else:
                histograms[series] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "buckets": list(instrument.buckets),
                    "counts": list(instrument.counts),
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Do-nothing registry: shared no-op instruments, empty snapshot.

    Accessors return module-level singleton instruments, so resolving a
    series allocates nothing — the zero-cost default the engine uses when no
    registry is configured.  Use :data:`NULL_REGISTRY` instead of
    constructing more instances.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The module-singleton no-op registry (the default everywhere).
NULL_REGISTRY = NullRegistry()
