"""JSONL emission for metric snapshots and progress heartbeats.

:class:`MetricsWriter` follows the repository's streamed-JSONL conventions
(established by the slot-trace and search-checkpoint writers): utf-8 text
mode, one ``json.dumps(..., sort_keys=True)`` record per line, flushed
immediately so a crashing run loses at most the record being written.  The
reader side reuses :func:`repro.utils.jsonl.iter_json_lines`, so malformed
files fail with the same positioned error style as every other JSONL format
here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from repro.exceptions import ObservabilityError
from repro.utils.jsonl import iter_json_lines

__all__ = ["MetricsWriter", "iter_metric_records", "read_metric_records"]


class MetricsWriter:
    """Context manager owning a metrics JSONL handle.

    ``mode`` is ``"w"`` (default, one file per run) or ``"a"`` (append, for
    heartbeat streams that span resumed runs).
    """

    def __init__(self, path: Union[str, Path], mode: str = "w") -> None:
        if mode not in ("w", "a"):
            raise ObservabilityError(f"mode must be 'w' or 'a', got {mode!r}")
        self._path = Path(path)
        self._mode = mode
        self._handle: Optional[IO[str]] = None

    @property
    def path(self) -> Path:
        return self._path

    def __enter__(self) -> "MetricsWriter":
        self._handle = self._path.open(self._mode, encoding="utf-8")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def write(self, record: Dict[str, Any]) -> None:
        """Append ``record`` as one flushed JSON line."""
        if self._handle is None:
            raise ObservabilityError(
                f"metrics writer for {self._path} used outside its context"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()


def iter_metric_records(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Lazily yield the records of a metrics JSONL file.

    A truncated *final* line — the tear a killed writer leaves behind — is
    dropped silently so heartbeat streams from crashed runs stay readable;
    malformed records anywhere else still raise :class:`ObservabilityError`.
    """
    for _line_number, record in iter_json_lines(
        path, ObservabilityError, tolerate_torn_tail=True
    ):
        if not isinstance(record, dict):
            raise ObservabilityError(
                f"metrics file {path} holds a non-object record: {record!r}"
            )
        yield record


def read_metric_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Materialise a metrics JSONL file as a list of records."""
    return list(iter_metric_records(path))
