"""Command-line interface for the reproduction.

The CLI wraps the most common entry points so results can be regenerated
without writing Python:

``python -m repro.cli figures``
    Reproduce the paper's worked examples (Figure 1 costs, Figure 2 impacts).

``python -m repro.cli compare --racks 6 --packets 150 --workload zipf``
    Run ALG and the baseline policies on one generated workload and print the
    comparison table.

``python -m repro.cli competitive --epsilon 1.0 --packets 10``
    Measure the empirical competitive ratio against the LP lower bound and
    check the Theorem 1 bound.

``python -m repro.cli simulate --racks 4 --packets 60 --policy alg --trace``
    Run a single policy on a generated workload and print metrics (optionally
    the slot-by-slot trace), or replay a CSV/JSONL packet trace with
    ``--input``.  ``--retention aggregate`` streams the workload through the
    engine with O(in-flight) memory — the mode for very large packet counts —
    and ``--trace-jsonl PATH`` streams the slot-by-slot trace to disk instead
    of holding it in RAM.

``python -m repro.cli sweep --experiment speedup --jobs 4 --output rows.json``
    Run one of the paper's parameter sweeps (E5, E6, E8, E9, E10) through the
    parallel experiment runner, fanning grid points out over ``--jobs`` worker
    processes, and optionally persist the rows as JSON (or, with a
    ``.jsonl`` output path, as streamed JSON Lines).  ``--retention
    aggregate`` bounds each simulation's memory; ``--chunksize`` sets how
    many grid points are streamed to a worker per dispatch.

``python -m repro.cli scenarios list --tag adversarial``
    Show the declarative scenario registry (name, tags, recipe, policies).

``python -m repro.cli scenarios run --grid smoke --jobs 4``
    Expand a named grid (or ``--scenario NAME...``) of the scenario matrix
    and run every (scenario, seed) cell; in the default ``--mode shared``
    each cell evaluates all of its policies in a single engine pass over a
    shared arrival stream (``SimulationEngine.run_multi``), so a P-policy
    cell generates its workload once instead of P times.  Rows are identical
    for any ``--jobs``, ``--mode`` and ``--retention``.

``python -m repro.cli search run --budget smoke --jobs 4``
    Hunt ALG's empirical worst cases: a deterministic evolutionary search
    over a scenario parameter space (``repro.search``), maximising ALG's
    cost ratio against the best baseline (``--objective empirical``) or the
    exact brute-force optimum on tiny cells (``--objective brute-force``).
    Candidates are evaluated in parallel over ``--jobs`` workers; the
    hall-of-fame archive is bit-identical for any ``--jobs`` value and
    across ``--checkpoint``/``resume``.  ``search list`` shows the named
    spaces, objectives and budgets; ``search report`` pretty-prints a
    checkpoint; ``search resume`` continues one (optionally with
    ``--generations`` extended).

``python -m repro.cli bench run --section dispatch``
    Measure one named hot-path benchmark section (``dispatch``,
    ``scheduler``, ``transmit``, ``run_multi``, ``streaming`` — or all of
    them by default) on a seeded cell, verify bit-identity against the
    reference configuration, and append a machine-stamped history point to
    the section's ``BENCH_<section>.json`` trajectory.  ``bench report``
    renders the recorded trend; ``bench check --tolerance 0.3`` re-measures
    and fails (exit 1) when throughput drops more than the tolerance below
    the best prior point from comparable hardware at the same scale — the
    CI perf-regression gate.

Every generating subcommand accepts ``--seed`` and prints deterministic
output for a fixed seed (``scenarios`` takes its seeds from the registry's
declarative cells instead); sweep and scenario output is identical for any
``--jobs`` value.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.analysis import compute_charges, evaluate_competitive_ratio
from repro.baselines import ablation_policies, all_policies, brute_force_optimal, standard_baselines
from repro.core import OpportunisticLinkScheduler
from repro.core.interfaces import Policy
from repro.experiments import (
    compare_policies_on_instance,
    competitive_ratio_sweep,
    delay_heterogeneity_sweep,
    format_comparison_table,
    hybrid_fixed_link_sweep,
    rows_to_table,
    small_lp_instances,
    speedup_sweep,
    standard_projector_instances,
    standard_projector_workload,
    two_tier_sweep,
    write_json,
    write_jsonl,
)
from repro.network import projector_fabric
from repro.simulation import completion_time_statistics, latency_statistics, simulate
from repro.utils.tables import format_table
from repro.workloads import (
    Instance,
    figure1_instance,
    figure1_reported_costs,
    figure2_instances,
    figure2_reported_impacts,
    iter_packet_trace,
    iter_packet_trace_jsonl,
    read_packet_trace,
    read_packet_trace_jsonl,
)

__all__ = ["main", "build_parser"]

_WORKLOADS = ("uniform", "zipf", "elephant-mice", "hotspot", "bursty", "incast")
_SWEEPS = ("competitive", "speedup", "delays", "hybrid", "tiers")
#: Mirrors repro.search.BUDGETS (kept literal so building the parser does not
#: import the search subsystem; a regression test pins the two in sync).
_SEARCH_BUDGETS = ("smoke", "default", "full")
#: Mirrors repro.bench.SECTIONS (same literal-for-lazy-import reasoning; a
#: regression test pins the two in sync).
_BENCH_SECTIONS = ("dispatch", "scheduler", "transmit", "run_multi", "streaming")
#: Default directory of the BENCH_<section>.json history files: the repo root.
_BENCH_DIR = Path(__file__).resolve().parents[2]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scheduling Opportunistic Links in Two-Tiered "
        "Reconfigurable Datacenters' (SPAA 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce the paper's worked examples")
    figures.set_defaults(func=cmd_figures)

    compare = sub.add_parser("compare", help="compare ALG against the baseline policies")
    compare.add_argument("--racks", type=int, default=6, help="number of racks")
    compare.add_argument("--packets", type=int, default=150, help="number of packets")
    compare.add_argument("--workload", choices=_WORKLOADS, default="zipf")
    compare.add_argument("--seed", type=int, default=2021)
    compare.add_argument("--ablations", action="store_true", help="include ablation policies")
    compare.set_defaults(func=cmd_compare)

    competitive = sub.add_parser(
        "competitive", help="measure the empirical competitive ratio (Theorem 1)"
    )
    competitive.add_argument("--epsilon", type=float, default=1.0)
    competitive.add_argument("--packets", type=int, default=10)
    competitive.add_argument("--instances", type=int, default=2)
    competitive.add_argument("--seed", type=int, default=19)
    competitive.add_argument(
        "--no-lp", action="store_true", help="use only the dual lower bound (faster)"
    )
    competitive.set_defaults(func=cmd_competitive)

    sim = sub.add_parser("simulate", help="run one policy on one workload")
    sim.add_argument("--racks", type=int, default=4)
    sim.add_argument("--packets", type=int, default=60)
    sim.add_argument("--workload", choices=_WORKLOADS, default="zipf")
    sim.add_argument("--policy", default="alg", help="policy name (see repro.baselines.all_policies)")
    sim.add_argument("--speed", type=float, default=1.0)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--trace", action="store_true", help="print the slot-by-slot trace")
    sim.add_argument(
        "--input", default=None,
        help="replay a packet trace (.csv or .jsonl) instead of generating one",
    )
    sim.add_argument(
        "--retention", choices=("full", "aggregate"), default="full",
        help="'aggregate' streams packets through the engine with O(in-flight) "
        "memory (summary numbers are identical; per-packet stats unavailable)",
    )
    sim.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="stream the slot-by-slot trace to PATH as JSON Lines (O(1) memory)",
    )
    sim.set_defaults(func=cmd_simulate)

    sweep = sub.add_parser(
        "sweep", help="run a parameter sweep through the parallel experiment runner"
    )
    sweep.add_argument(
        "--experiment",
        choices=_SWEEPS + ("all",),
        default="all",
        help="which sweep to run (E5 competitive, E6 speedup, E8 delays, E9 hybrid, E10 tiers)",
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the grid (1 = serial; rows are identical either way)",
    )
    sweep.add_argument("--racks", type=int, default=4, help="fabric size for the E9/E10 sweeps")
    sweep.add_argument(
        "--packets", type=int, default=60, help="packets per instance (E8/E9/E10 sweeps)"
    )
    sweep.add_argument(
        "--lp-packets", type=int, default=8,
        help="packets per LP-sized instance (E5/E6 sweeps; the exact LP limits size)",
    )
    sweep.add_argument("--seed", type=int, default=2021)
    sweep.add_argument(
        "--output", default=None,
        help="also write the rows to this path (.json document or streamed .jsonl)",
    )
    sweep.add_argument(
        "--retention", choices=("full", "aggregate"), default="full",
        help="simulation retention mode for the E8/E9/E10 sweeps "
        "('aggregate' bounds per-run memory; rows are identical)",
    )
    sweep.add_argument(
        "--chunksize", type=int, default=1,
        help="grid points streamed to a worker per dispatch (jobs > 1)",
    )
    sweep.set_defaults(func=cmd_sweep)

    scenarios = sub.add_parser(
        "scenarios", help="list or run the declarative scenario matrix"
    )
    scen_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    scen_list = scen_sub.add_parser("list", help="show the scenario registry")
    scen_list.add_argument("--tag", default=None, help="only scenarios carrying this tag")
    scen_list.add_argument(
        "--grid", default=None, help="only scenarios of this named grid"
    )
    scen_list.set_defaults(func=cmd_scenarios_list)

    scen_run = scen_sub.add_parser(
        "run", help="run a scenario grid through the experiment runner"
    )
    scen_run.add_argument(
        "--grid", default=None,
        help="named grid to run (smoke, paper, adversarial, full); "
        "default 'smoke' when no --scenario is given",
    )
    scen_run.add_argument(
        "--scenario", nargs="+", default=None, metavar="NAME",
        help="explicit scenario names to run instead of a named grid",
    )
    scen_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the cell grid (rows identical for any value)",
    )
    scen_run.add_argument(
        "--chunksize", type=int, default=1,
        help="cells streamed to a worker per dispatch (jobs > 1)",
    )
    scen_run.add_argument(
        "--mode", choices=("shared", "per-policy"), default="shared",
        help="'shared' evaluates each cell's policies in one run_multi pass "
        "over a shared arrival stream; 'per-policy' runs one task per "
        "(cell, policy) — identical rows, finer parallelism",
    )
    scen_run.add_argument(
        "--retention", choices=("full", "aggregate"), default="full",
        help="simulation retention mode ('aggregate' bounds per-run memory; "
        "rows are identical)",
    )
    scen_run.add_argument(
        "--engine", choices=("indexed", "reference", "vectorized"), default=None,
        help="hot-path backend for dispatch AND scheduling: 'indexed' uses "
        "the incremental impact index plus the incremental matching "
        "repairer, 'vectorized' adds the numpy-batched transmission step "
        "on top of the indexed paths, 'reference' the O(n) adjacency scan "
        "with from-scratch matching; rows are bit-identical (default: each "
        "scenario's own setting)",
    )
    scen_run.add_argument(
        "--faults", type=int, default=None, metavar="SEED",
        help="inject a deterministic per-cell hardware-fault schedule "
        "(failing lasers/photodetectors/edges, degraded rates) generated "
        "from this seed; overrides any scenario-level fault configuration",
    )
    scen_run.add_argument(
        "--on-fail", choices=("requeue", "drop", "redispatch"), default=None,
        help="degradation policy for chunks stranded on failed hardware "
        "(default: each scenario's own setting, normally 'requeue')",
    )
    scen_run.add_argument(
        "--output", default=None,
        help="also write the rows to this path (.json document or streamed .jsonl)",
    )
    scen_run.set_defaults(func=cmd_scenarios_run)

    search = sub.add_parser(
        "search", help="adversarial scenario search (hunt ALG's empirical worst cases)"
    )
    search_sub = search.add_subparsers(dest="search_command", required=True)

    search_list = search_sub.add_parser(
        "list", help="show the named search spaces, objectives and budgets"
    )
    search_list.set_defaults(func=cmd_search_list)

    search_run = search_sub.add_parser(
        "run", help="run an adversarial search and print its hall of fame"
    )
    search_run.add_argument(
        "--space", default=None,
        help="parameter space to search (default: 'adversarial' for the "
        "empirical objective, 'tiny' for brute-force)",
    )
    search_run.add_argument(
        "--objective", choices=("empirical", "brute-force"), default="empirical",
        help="'empirical' scores ALG vs the best baseline via shared-stream "
        "run_multi cells; 'brute-force' scores ALG vs the exact offline "
        "optimum on tiny cells",
    )
    search_run.add_argument(
        "--budget", choices=sorted(_SEARCH_BUDGETS), default="smoke",
        help="named (population, generations) preset",
    )
    search_run.add_argument(
        "--generations", type=int, default=None, help="override the budget's generations"
    )
    search_run.add_argument(
        "--population", type=int, default=None, help="override the budget's population size"
    )
    search_run.add_argument("--seed", type=int, default=0, help="search root seed")
    search_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for candidate evaluation (archive identical for any value)",
    )
    search_run.add_argument(
        "--chunksize", type=int, default=1,
        help="candidates streamed to a worker per dispatch (jobs > 1)",
    )
    search_run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write generational JSONL state to PATH (resumable with 'search resume')",
    )
    search_run.add_argument(
        "--output", default=None,
        help="also write the hall-of-fame rows to this path (.json or .jsonl)",
    )
    search_run.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write per-generation heartbeat records to this JSONL file",
    )
    search_run.set_defaults(func=cmd_search_run)

    search_resume = search_sub.add_parser(
        "resume", help="continue a checkpointed search (bit-identical to an unbroken run)"
    )
    search_resume.add_argument("--checkpoint", required=True, metavar="PATH")
    search_resume.add_argument(
        "--generations", type=int, default=None,
        help="extend the total generation budget (default: the checkpointed one)",
    )
    search_resume.add_argument(
        "--jobs", type=int, default=None,
        help="override the checkpointed jobs count (never affects results)",
    )
    search_resume.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="append per-generation heartbeat records to this JSONL file",
    )
    search_resume.set_defaults(func=cmd_search_resume)

    search_report = search_sub.add_parser(
        "report", help="pretty-print a search checkpoint (progress + hall of fame)"
    )
    search_report.add_argument("--checkpoint", required=True, metavar="PATH")
    search_report.set_defaults(func=cmd_search_report)

    bench = sub.add_parser(
        "bench", help="record, report and gate the performance trajectory"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    def _bench_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--section", choices=_BENCH_SECTIONS, default=None,
            help="one section (default: every section)",
        )
        p.add_argument(
            "--packets", type=int, default=None,
            help="override the section's default packet count",
        )
        p.add_argument("--racks", type=int, default=16)
        p.add_argument("--seed", type=int, default=15)
        p.add_argument(
            "--dir", default=str(_BENCH_DIR), metavar="PATH",
            help="directory holding the BENCH_<section>.json files",
        )

    bench_run = bench_sub.add_parser(
        "run", help="run section benchmarks and append history points"
    )
    _bench_scale_args(bench_run)
    bench_run.set_defaults(func=cmd_bench_run)

    bench_report = bench_sub.add_parser(
        "report", help="render the recorded throughput trajectory"
    )
    bench_report.add_argument("--dir", default=str(_BENCH_DIR), metavar="PATH")
    bench_report.set_defaults(func=cmd_bench_report)

    bench_check = bench_sub.add_parser(
        "check",
        help="fail when throughput regresses vs the best comparable prior point",
    )
    _bench_scale_args(bench_check)
    bench_check.add_argument(
        "--tolerance", type=float, default=0.3,
        help="allowed fractional drop below the comparable best (default 0.3)",
    )
    bench_check.set_defaults(func=cmd_bench_check)
    return parser


# ---------------------------------------------------------------------- #
# subcommands
# ---------------------------------------------------------------------- #
def cmd_figures(_args: argparse.Namespace) -> int:
    """Reproduce Figure 1 and Figure 2 and print paper-vs-measured tables."""
    instance = figure1_instance()
    alg = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
    optimum = brute_force_optimal(instance)
    expected = figure1_reported_costs()
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["Figure 1 feasible schedule", expected["feasible_solution"], 9.0],
                ["Figure 1 optimal schedule", expected["optimal_solution"], optimum.cost],
                ["Figure 1 ALG cost", "n/a", alg.total_weighted_latency],
            ],
            title="Figure 1",
        )
    )
    rows = []
    for key, fig2 in figure2_instances().items():
        result = simulate(
            fig2.topology, OpportunisticLinkScheduler(), fig2.packets, record_trace=True
        )
        charges = compute_charges(result)
        for pid, value in figure2_reported_impacts()[key].items():
            rows.append([key, f"p{pid + 1}", value, charges.charge(pid)])
    print()
    print(format_table(["packet set", "packet", "paper", "measured"], rows, title="Figure 2"))
    return 0


def _generated_instance(racks: int, packets: int, workload: str, seed: int) -> Instance:
    suite = standard_projector_instances(
        num_racks=racks, lasers_per_rack=2, num_packets=packets, seed=seed
    )
    return suite[workload]


def cmd_compare(args: argparse.Namespace) -> int:
    """Run ALG and the baselines on one generated workload."""
    instance = _generated_instance(args.racks, args.packets, args.workload, args.seed)
    policies: Dict[str, Policy] = all_policies(seed=args.seed, include_direct_first=False)
    if not args.ablations:
        for name in ablation_policies():
            policies.pop(name, None)
    rows = compare_policies_on_instance(instance, policies)
    print(
        format_comparison_table(
            rows, title=f"{args.workload} workload, {args.racks} racks, {args.packets} packets"
        )
    )
    return 0


def cmd_competitive(args: argparse.Namespace) -> int:
    """Measure the empirical competitive ratio on small random instances."""
    if args.epsilon <= 0:
        print("error: --epsilon must be positive", file=sys.stderr)
        return 2
    instances = small_lp_instances(
        num_instances=args.instances, num_packets=args.packets, seed=args.seed
    )
    rows = []
    all_within = True
    for instance in instances.values():
        report = evaluate_competitive_ratio(instance, args.epsilon, use_lp=not args.no_lp)
        all_within = all_within and report.within_bound
        rows.append(
            [
                instance.name,
                args.epsilon,
                report.algorithm_cost,
                report.best_lower_bound,
                report.empirical_ratio,
                report.theoretical_bound,
                report.within_bound,
            ]
        )
    print(
        format_table(
            ["instance", "epsilon", "ALG cost", "lower bound", "ratio", "bound", "within"],
            rows,
            title="Theorem 1: empirical competitive ratio",
        )
    )
    return 0 if all_within else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a single policy on a generated workload or a replayed trace."""
    policies = all_policies(seed=args.seed, include_direct_first=True)
    if args.policy not in policies:
        print(
            f"error: unknown policy {args.policy!r}; choose from {sorted(policies)}",
            file=sys.stderr,
        )
        return 2
    streaming = args.retention == "aggregate"
    if args.input is not None:
        topology = projector_fabric(
            num_racks=args.racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=args.seed
        )
        if str(args.input).endswith(".jsonl"):
            packets = iter_packet_trace_jsonl(args.input) if streaming else read_packet_trace_jsonl(args.input)
        else:
            packets = iter_packet_trace(args.input) if streaming else read_packet_trace(args.input)
    elif streaming:
        # Build only the requested workload, lazily — the whole point of
        # aggregate mode is not materialising a million-packet suite.
        topology, packets = standard_projector_workload(
            args.workload,
            num_racks=args.racks,
            lasers_per_rack=2,
            num_packets=args.packets,
            seed=args.seed,
        )
    else:
        instance = _generated_instance(args.racks, args.packets, args.workload, args.seed)
        topology, packets = instance.topology, instance.packets

    result = simulate(
        topology,
        policies[args.policy],
        packets,
        speed=args.speed,
        record_trace=args.trace,
        retention=args.retention,
        trace_path=args.trace_jsonl,
    )
    rows = [
        ["policy", result.policy_name],
        ["packets", len(result)],
        ["all delivered", result.all_delivered],
        ["total weighted latency", result.total_weighted_latency],
    ]
    if streaming:
        # Per-packet distributions are not retained in aggregate mode; report
        # the online summary numbers instead.
        summary = result.summary()
        rows += [
            ["mean weighted latency", summary["mean_weighted_latency"]],
            ["mean completion time", result.mean_flow_completion_time],
        ]
    else:
        weighted = latency_statistics(result)
        completion = completion_time_statistics(result)
        rows += [
            ["mean weighted latency", weighted.mean],
            ["p99 weighted latency", weighted.p99],
            ["mean completion time", completion.mean],
        ]
    rows += [
        ["slots simulated", result.num_slots],
        ["fixed-link fraction", result.fixed_link_fraction],
    ]
    print(format_table(["metric", "value"], rows, title="simulation summary"))
    if args.trace and result.trace is not None:
        print()
        print(result.trace.format(max_slots=10))
    if args.trace_jsonl is not None:
        print(f"wrote slot trace to {args.trace_jsonl}")
    return 0


def _run_one_sweep(name: str, args: argparse.Namespace) -> list:
    """Run one named sweep with the CLI's sizing knobs and return its rows."""
    if name == "competitive":
        instances = small_lp_instances(
            num_instances=2, num_packets=args.lp_packets, seed=args.seed
        )
        return competitive_ratio_sweep(
            instances, epsilons=(0.5, 1.0, 2.0), use_lp=False, jobs=args.jobs,
            chunksize=args.chunksize,
        )
    if name == "speedup":
        instances = small_lp_instances(
            num_instances=1, num_packets=args.lp_packets, seed=args.seed
        )
        instance = next(iter(instances.values()))
        return speedup_sweep(
            instance, speeds=(1.0, 1.5, 2.0, 3.0), jobs=args.jobs, chunksize=args.chunksize
        )
    if name == "delays":
        policies: Dict[str, Policy] = {
            "alg": OpportunisticLinkScheduler(),
            **standard_baselines(seed=args.seed),
        }
        return delay_heterogeneity_sweep(
            policies, num_packets=args.packets, seed=args.seed, jobs=args.jobs,
            chunksize=args.chunksize, retention=args.retention,
        )
    if name == "hybrid":
        return hybrid_fixed_link_sweep(
            num_racks=args.racks, num_packets=args.packets, seed=args.seed, jobs=args.jobs,
            chunksize=args.chunksize, retention=args.retention,
        )
    if name == "tiers":
        return two_tier_sweep(
            num_racks=args.racks, num_packets=args.packets, seed=args.seed, jobs=args.jobs,
            chunksize=args.chunksize, retention=args.retention,
        )
    raise ValueError(f"unknown sweep {name!r}")  # pragma: no cover - argparse guards


def _validate_runner_args(args: argparse.Namespace) -> int:
    """Shared up-front checks of the runner knobs (--jobs/--chunksize/--output).

    Returns 0 when valid, else the exit code to return — checked before any
    work so a long run is not thrown away on a typo.
    """
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.chunksize < 1:
        print("error: --chunksize must be >= 1", file=sys.stderr)
        return 2
    if args.output is not None and not Path(args.output).parent.is_dir():
        print(
            f"error: --output directory {Path(args.output).parent} does not exist",
            file=sys.stderr,
        )
        return 2
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run one (or every) parameter sweep through the parallel runner."""
    invalid = _validate_runner_args(args)
    if invalid:
        return invalid
    names = list(_SWEEPS) if args.experiment == "all" else [args.experiment]
    tagged_rows = []
    for name in names:
        rows = _run_one_sweep(name, args)
        print(rows_to_table(rows, title=f"sweep: {name} (jobs={args.jobs})"))
        print()
        for row in rows:
            tagged_rows.append({"experiment": name, **dataclasses.asdict(row)})
    if args.output is not None:
        if str(args.output).endswith(".jsonl"):
            path = write_jsonl(tagged_rows, args.output)
        else:
            path = write_json(tagged_rows, args.output)
        print(f"wrote {len(tagged_rows)} rows to {path}")
    return 0


def cmd_scenarios_list(args: argparse.Namespace) -> int:
    """Print the scenario registry (optionally filtered by tag or grid)."""
    from repro.exceptions import ScenarioError
    from repro.scenarios import grid_matrix, grid_names, list_scenarios

    names = None
    if args.grid is not None:
        try:
            names = {s.name for s in grid_matrix(args.grid).scenarios}
        except ScenarioError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    scenarios = [
        s
        for s in list_scenarios(tag=args.tag)
        if names is None or s.name in names
    ]
    rows = [
        [
            s.name,
            ",".join(s.tags),
            s.topology.kind,
            s.workload.kind,
            ",".join(s.policies),
            len(s.seeds),
            s.description,
        ]
        for s in scenarios
    ]
    print(
        format_table(
            ["scenario", "tags", "topology", "workload", "policies", "seeds", "description"],
            rows,
            title=f"{len(rows)} registered scenarios (grids: {', '.join(grid_names())})",
        )
    )
    return 0


def cmd_scenarios_run(args: argparse.Namespace) -> int:
    """Expand and run a scenario grid through the parallel experiment runner."""
    from repro.exceptions import ScenarioError
    from repro.scenarios import grid_matrix, scenario_matrix

    invalid = _validate_runner_args(args)
    if invalid:
        return invalid
    if args.grid is not None and args.scenario is not None:
        print("error: pass either --grid or --scenario, not both", file=sys.stderr)
        return 2
    try:
        if args.scenario is not None:
            matrix = scenario_matrix(args.scenario, name="cli")
        else:
            matrix = grid_matrix(args.grid or "smoke")
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = matrix.run(
        jobs=args.jobs,
        chunksize=args.chunksize,
        mode=args.mode,
        retention=args.retention,
        engine=args.engine,
        output_path=args.output,
        faults_seed=args.faults,
        on_fail=args.on_fail,
    )
    print(
        rows_to_table(
            rows,
            title=(
                f"scenario grid: {matrix.name} — {matrix.num_cells} cells, "
                f"{matrix.num_runs} runs (mode={args.mode}, jobs={args.jobs})"
            ),
        )
    )
    if args.output is not None:
        print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def _hall_of_fame_table(entries, title: str) -> str:
    """Render hall-of-fame entries as a table (best first)."""
    rows = [
        [
            rank + 1,
            f"{entry.score:.6f}",
            f"{entry.mean_ratio:.6f}",
            entry.params.get("kind", "?"),
            entry.params.get("speed", "?"),
            entry.scenario_name,
        ]
        for rank, entry in enumerate(entries)
    ]
    return format_table(
        ["rank", "score (min ratio)", "mean ratio", "kind", "speed", "scenario"],
        rows,
        title=title,
    )


def _print_search_result(result, jobs: int) -> None:
    history = ", ".join(f"{score:.6f}" for score in result.best_history)
    print(
        f"ran {result.generations_run} generations, {result.evaluations} distinct "
        f"candidates evaluated (jobs={jobs})"
        + (" — stopped early on stagnation" if result.stopped_early else "")
    )
    print(f"best score per generation: {history}")
    print()
    print(_hall_of_fame_table(result.hall_of_fame, title="hall of fame"))


def _write_hall_of_fame(entries, output: str) -> None:
    rows = [entry.to_json() for entry in entries]
    if output.endswith(".jsonl"):
        path = write_jsonl(rows, output)
    else:
        path = write_json(rows, output)
    print(f"wrote {len(rows)} hall-of-fame rows to {path}")


def cmd_search_list(_args: argparse.Namespace) -> int:
    """Print the registered search spaces, objectives and budget presets."""
    from repro.search import BUDGETS, get_space, space_names

    space_rows = []
    for name in space_names():
        space = get_space(name)
        space_rows.append(
            [name, space.builder, len(space.knobs),
             ", ".join(k.name for k in space.knobs)]
        )
    print(format_table(["space", "builder", "knobs", "knob names"], space_rows,
                       title="search spaces"))
    print()
    objective_rows = [
        ["empirical", "ALG cost / best baseline cost (shared-stream run_multi)"],
        ["brute-force", "ALG cost / exact offline optimum (tiny cells only)"],
    ]
    print(format_table(["objective", "measures"], objective_rows, title="objectives"))
    print()
    budget_rows = [
        [name, config.population_size, config.generations,
         config.hall_of_fame_size, config.stagnation_limit or "off"]
        for name, config in sorted(BUDGETS.items())
    ]
    print(format_table(
        ["budget", "population", "generations", "hall of fame", "stagnation"],
        budget_rows, title="budgets",
    ))
    return 0


def cmd_search_run(args: argparse.Namespace) -> int:
    """Run an adversarial search and print (optionally persist) its archive."""
    from repro.exceptions import SearchError
    from repro.search import AdversarialSearch, BUDGETS, get_space, objective_from_json

    invalid = _validate_runner_args(args)
    if invalid:
        return invalid
    try:
        objective = objective_from_json({"kind": args.objective})
        space_name = args.space or (
            "tiny" if args.objective == "brute-force" else "adversarial"
        )
        space = get_space(space_name)
        config = BUDGETS[args.budget]
        overrides = {"seed": args.seed, "jobs": args.jobs, "chunksize": args.chunksize}
        if args.generations is not None:
            overrides["generations"] = args.generations
        if args.population is not None:
            overrides["population_size"] = args.population
        config = dataclasses.replace(config, **overrides)
        search = AdversarialSearch(space, objective, config)
        result = search.run(
            checkpoint_path=args.checkpoint, metrics_path=args.metrics
        )
    except SearchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"search space {space_name!r}, objective {args.objective!r}, "
        f"budget {args.budget!r}, seed {args.seed}"
    )
    _print_search_result(result, jobs=args.jobs)
    if args.checkpoint is not None:
        print(f"\nwrote checkpoint to {args.checkpoint}")
    if args.output is not None:
        _write_hall_of_fame(result.hall_of_fame, args.output)
    return 0


def cmd_search_resume(args: argparse.Namespace) -> int:
    """Continue a checkpointed search to its (possibly extended) budget."""
    from repro.exceptions import SearchError
    from repro.search import resume_search

    if args.jobs is not None and args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.generations is not None and args.generations < 1:
        print("error: --generations must be >= 1", file=sys.stderr)
        return 2
    try:
        search, result = resume_search(
            args.checkpoint,
            generations=args.generations,
            jobs=args.jobs,
            metrics_path=args.metrics,
        )
    except SearchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_search_result(result, jobs=search.config.jobs)
    return 0


def cmd_search_report(args: argparse.Namespace) -> int:
    """Summarise a checkpoint: meta, per-generation progress, hall of fame."""
    from repro.exceptions import SearchError
    from repro.search import HallOfFameEntry, read_checkpoint

    try:
        state = read_checkpoint(args.checkpoint)
    except SearchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    meta = state["meta"]
    config = meta["config"]
    print(
        f"space {meta['space']!r}, objective {meta['objective']['kind']!r}, "
        f"population {config['population_size']}, seed {config['seed']}"
    )
    generations = state["generations"]
    progress_rows = [
        [record["generation"], len(record["evaluations"]),
         f"{record['best_score']:.6f}"]
        for record in generations
    ]
    print()
    print(format_table(["generation", "new evaluations", "best score"],
                       progress_rows, title="progress"))
    if generations:
        entries = [
            HallOfFameEntry.from_json(data)
            for data in generations[-1]["hall_of_fame"]
        ]
        print()
        print(_hall_of_fame_table(entries, title="hall of fame"))
    return 0


def _bench_sections(args: argparse.Namespace) -> list:
    from repro.bench import SECTIONS

    return list(SECTIONS) if args.section is None else [args.section]


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run benchmark sections and append each point to its history file."""
    from repro.bench import (
        BenchBitIdentityError,
        bench_path,
        bench_tag,
        load_history,
        run_section,
        save_history,
    )

    for section in _bench_sections(args):
        path = bench_path(section, args.dir)
        try:
            history = load_history(path)
        except ValueError as exc:
            print(f"error: refusing to overwrite benchmark history: {exc}",
                  file=sys.stderr)
            return 1
        try:
            point = run_section(
                section, packets=args.packets, racks=args.racks, seed=args.seed
            )
        except BenchBitIdentityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        history.append(point)
        save_history(path, history, bench_tag(section))
        print(
            f"{section:>10}: {point['throughput_pps']:.1f} packets/s, "
            f"speedup {point['speedup']:.2f}x -> {path} "
            f"({len(history)} history points)"
        )
    return 0


def cmd_bench_report(args: argparse.Namespace) -> int:
    """Render the recorded throughput trajectory of every section."""
    from repro.bench import render_report

    print(render_report(args.dir))
    return 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    """Gate: re-measure sections and fail on a comparable-throughput regression.

    Measures each requested section at the given (smoke) scale and compares
    against the recorded history WITHOUT appending — the gate observes the
    trajectory, it does not write it.
    """
    from repro.bench import (
        BenchBitIdentityError,
        bench_path,
        check_history,
        load_history,
        run_section,
    )

    if not 0 <= args.tolerance < 1:
        print("error: --tolerance must lie in [0, 1)", file=sys.stderr)
        return 2
    failed = False
    for section in _bench_sections(args):
        try:
            history = load_history(bench_path(section, args.dir))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            point = run_section(
                section, packets=args.packets, racks=args.racks, seed=args.seed
            )
        except BenchBitIdentityError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ok, message = check_history(history, point, args.tolerance)
        print(f"{section:>10}: {message}")
        failed = failed or not ok
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
