"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "RoutingError",
    "WorkloadError",
    "SimulationError",
    "DispatchError",
    "SchedulingError",
    "FaultError",
    "AnalysisError",
    "LPError",
    "ExperimentError",
    "ScenarioError",
    "SearchError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Raised when a topology is structurally invalid or a query is malformed.

    Examples include: attaching a transmitter to an unknown source, adding a
    reconfigurable edge with delay ``< 1``, or requesting the neighbourhood of
    a node that does not exist.
    """


class RoutingError(ReproError):
    """Raised when a packet cannot be routed.

    A packet is unroutable when its (source, destination) pair has neither a
    transmitter-receiver edge in the reconfigurable network nor a direct fixed
    link.
    """


class WorkloadError(ReproError):
    """Raised when a workload specification or trace file is invalid."""


class SimulationError(ReproError):
    """Raised when the simulation engine reaches an inconsistent state.

    This includes exceeding the configured safety horizon, observing a
    negative remaining chunk size, or a policy returning a set of
    transmissions that is not a matching.
    """


class DispatchError(SimulationError):
    """Raised when a dispatcher produces an invalid assignment."""


class SchedulingError(SimulationError):
    """Raised when a scheduler produces an invalid (non-matching) schedule."""


class FaultError(SimulationError):
    """Raised when a fault schedule is malformed or names unknown hardware."""


class AnalysisError(ReproError):
    """Raised by the LP / dual-fitting analysis machinery."""


class LPError(AnalysisError):
    """Raised when a linear program cannot be constructed or solved."""


class ExperimentError(ReproError):
    """Raised by the experiment harness (bad configuration, missing data)."""


class ScenarioError(ExperimentError):
    """Raised by the scenario registry (unknown kinds, names or grids)."""


class SearchError(ExperimentError):
    """Raised by the adversarial scenario search (bad spaces, objectives or checkpoints)."""


class ObservabilityError(ReproError):
    """Raised by the metrics/span layer (conflicting series, bad metric files)."""
