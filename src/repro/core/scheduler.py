"""Per-slot schedulers built on the pending-chunk pool.

The paper's scheduler (Section III-C) is :class:`StableMatchingScheduler`:
at each slot it processes pending chunks in decreasing weight (ties by earlier
arrival) and greedily selects a chunk whenever its edge's transmitter and
receiver are both still free; the selected set is a stable matching and is
transmitted during the slot.

For convenience this module also exposes :class:`OrderedGreedyScheduler`, a
generalisation that accepts any total order on chunks; the FIFO baseline in
:mod:`repro.baselines` is an instance of it.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.interfaces import Scheduler
from repro.core.packet import Chunk
from repro.core.queues import PendingChunkPool
from repro.network.topology import TwoTierTopology
from repro.utils.ordering import chunk_priority_key

__all__ = ["StableMatchingScheduler", "OrderedGreedyScheduler"]


class OrderedGreedyScheduler(Scheduler):
    """Greedy maximal matching in a caller-supplied chunk order.

    Processes eligible pending chunks in the order induced by ``key`` and
    selects a chunk whenever both endpoints of its edge are still free.  The
    result is always a maximal matching; it is a *stable* matching exactly
    when ``key`` is the paper's priority order.
    """

    name = "ordered-greedy"

    def __init__(self, key: Callable[[Chunk], Tuple], name: str | None = None) -> None:
        self._key = key
        if name is not None:
            self.name = name

    def select_matching(
        self,
        pool: PendingChunkPool,
        topology: TwoTierTopology,
        now: int,
    ) -> List[Chunk]:
        """Return a maximal matching of eligible chunks in the configured order."""
        selected: List[Chunk] = []
        used_transmitters: set[str] = set()
        used_receivers: set[str] = set()
        eligible = pool.eligible_chunks(now)
        if self._key is not chunk_priority_key:
            # The pool already yields chunks in chunk_priority_key order; only
            # other orders (e.g. the FIFO baseline) need a re-sort.
            eligible.sort(key=self._key)
        for chunk in eligible:
            if chunk.transmitter in used_transmitters or chunk.receiver in used_receivers:
                continue
            selected.append(chunk)
            used_transmitters.add(chunk.transmitter)
            used_receivers.add(chunk.receiver)
        return selected


class StableMatchingScheduler(OrderedGreedyScheduler):
    """The paper's greedy stable-matching scheduler (Section III-C).

    Chunks are considered in decreasing weight, ties broken by earlier packet
    arrival (and then deterministically by packet id / chunk index).  Because
    the priorities are symmetric, the greedy selection yields a stable
    matching: every skipped chunk is blocked by a selected chunk of at least
    its weight sharing its transmitter or receiver.
    """

    name = "stable-matching"

    def __init__(self) -> None:
        super().__init__(key=chunk_priority_key, name=self.name)
