"""Per-slot schedulers built on the pending-chunk pool.

The paper's scheduler (Section III-C) is :class:`StableMatchingScheduler`:
at each slot it processes pending chunks in decreasing weight (ties by earlier
arrival) and greedily selects a chunk whenever its edge's transmitter and
receiver are both still free; the selected set is a stable matching and is
transmitted during the slot.

On pools that maintain a :class:`~repro.core.matching_index.MatchingIndex`
(the ``engine="indexed"`` hot path), the stable-matching scheduler reads the
incrementally repaired matching instead of replaying the greedy pass; the
from-scratch pass below remains the reference oracle and the fallback for
plain pools.  Both paths return bit-identical matchings — same chunks, same
order — which the differential harness enforces.

For convenience this module also exposes :class:`OrderedGreedyScheduler`, a
generalisation that accepts any total order on chunks; the FIFO baseline in
:mod:`repro.baselines` is an instance of it.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

from repro.core.interfaces import Scheduler
from repro.core.packet import Chunk
from repro.core.queues import PendingChunkPool
from repro.network.topology import TwoTierTopology
from repro.utils.ordering import chunk_fifo_key, chunk_priority_key

__all__ = ["StableMatchingScheduler", "OrderedGreedyScheduler"]


class OrderedGreedyScheduler(Scheduler):
    """Greedy maximal matching in a caller-supplied chunk order.

    Processes eligible pending chunks in the order induced by ``key`` and
    selects a chunk whenever both endpoints of its edge are still free.  The
    result is always a maximal matching; it is a *stable* matching exactly
    when ``key`` is the paper's priority order.
    """

    name = "ordered-greedy"

    def __init__(self, key: Callable[[Chunk], Tuple], name: str | None = None) -> None:
        self._key = key
        if name is not None:
            self.name = name

    def _ordered_eligible(self, pool: PendingChunkPool, now: int) -> Iterable[Chunk]:
        """Eligible chunks in the configured order, without a per-slot sort.

        The pool maintains both the priority order and (lazily) the FIFO
        order, so the two standard keys consume a ready-made iterator; only
        custom keys fall back to materialise-and-sort.  ``getattr`` keeps the
        scheduler usable against minimal pool stand-ins (the differential
        harness's naive pool), which simply take the sorting fallback.
        """
        if self._key is chunk_priority_key:
            iter_eligible = getattr(pool, "iter_eligible", None)
            if iter_eligible is not None:
                return iter_eligible(now)
            return pool.eligible_chunks(now)  # already in priority order
        if self._key is chunk_fifo_key:
            iter_fifo = getattr(pool, "iter_eligible_fifo", None)
            if iter_fifo is not None:
                return iter_fifo(now)
        return sorted(pool.eligible_chunks(now), key=self._key)

    def select_matching(
        self,
        pool: PendingChunkPool,
        topology: TwoTierTopology,
        now: int,
    ) -> List[Chunk]:
        """Return a maximal matching of eligible chunks in the configured order."""
        selected: List[Chunk] = []
        used_transmitters: set[str] = set()
        used_receivers: set[str] = set()
        for chunk in self._ordered_eligible(pool, now):
            if chunk.transmitter in used_transmitters or chunk.receiver in used_receivers:
                continue
            selected.append(chunk)
            used_transmitters.add(chunk.transmitter)
            used_receivers.add(chunk.receiver)
        return selected


class StableMatchingScheduler(OrderedGreedyScheduler):
    """The paper's greedy stable-matching scheduler (Section III-C).

    Chunks are considered in decreasing weight, ties broken by earlier packet
    arrival (and then deterministically by packet id / chunk index).  Because
    the priorities are symmetric, the greedy selection yields a stable
    matching: every skipped chunk is blocked by a selected chunk of at least
    its weight sharing its transmitter or receiver.

    With ``incremental=True`` (the default) the scheduler advertises
    ``uses_matching_index``, so indexed-engine lanes give it a pool whose
    :class:`~repro.core.matching_index.MatchingIndex` repairs the previous
    slot's matching from the arrival/completion/activation delta; reading it
    replaces the full greedy pass.  ``incremental=False`` keeps the
    from-scratch pass even on indexed pools — the configuration benchmarks
    use to isolate the scheduler-phase speedup.
    """

    name = "stable-matching"

    def __init__(self, incremental: bool = True) -> None:
        super().__init__(key=chunk_priority_key, name=self.name)
        self.uses_matching_index = incremental

    def select_matching(
        self,
        pool: PendingChunkPool,
        topology: TwoTierTopology,
        now: int,
    ) -> List[Chunk]:
        """Return the greedy stable matching of the eligible chunks at ``now``."""
        if self.uses_matching_index:
            index = getattr(pool, "matching_index", None)
            if index is not None and now >= pool.eligible_through:
                # The index tracks the pool's eligible partition; advancing
                # the watermark feeds it any activations due by ``now``.
                pool.advance_eligibility(now)
                return index.current_matching()
        return super().select_matching(pool, topology, now)
