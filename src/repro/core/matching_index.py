"""Incremental repair of the greedy stable matching (Section III-C hot path).

The reference scheduler recomputes the greedy stable matching from scratch
every slot: sort all eligible chunks by priority, walk the order, select a
chunk whenever both ports of its edge are free.  Between consecutive slots,
however, the eligible set changes only where chunks arrived, completed or
became eligible, and the greedy matching has a local characterisation that
makes it repairable from exactly those deltas:

    a chunk ``c`` is matched  ⟺  no *matched* chunk of higher priority
    shares ``c``'s transmitter or receiver.

(The greedy matching is the lexicographically-first maximal matching in the
chunk conflict graph; each matched chunk owns both its ports.)  The
characterisation yields two repair rules:

* **removal** of a matched chunk ``c`` frees its two ports; the only chunks
  whose status can flip are *lower*-priority chunks on those two ports (a
  higher-priority unmatched chunk was blocked through its other port, which
  the removal did not touch).  Removing an unmatched chunk changes nothing.
* **addition / activation** of a chunk ``c`` can match it — evicting at most
  one lower-priority owner per port — and each eviction recursively frees
  that owner's other port.  Every chunk in the cascade has strictly lower
  priority than its evictor, so the cascade is driven by the delta, not by
  the pool size.

:class:`MatchingIndex` implements both rules with a single priority-keyed
task heap.  Events (activations, removals) push *tasks*; draining the heap
processes tasks in non-decreasing priority order, which makes every decision
final — exactly the order the from-scratch greedy pass would have used — so
the repaired matching is **bit-identical** (same chunks, and, after the final
priority sort of the small matched set, same order) to
:func:`~repro.core.stable_matching.greedy_stable_matching` on the current
eligible set.  The differential harness and the property tests in
``tests/test_matching_index.py`` enforce this equivalence.

Two task kinds exist:

* ``eval(c)`` — decide chunk ``c`` at its own priority: match it (evicting
  lower-priority port owners) iff both ports are free or lower-priority.
* ``scan(side, port, from_key)`` — a port was freed by a chunk with priority
  ``from_key``; find the highest-priority chunk below ``from_key`` on the
  port whose other port is also free (or lower-priority).  Before committing
  to a candidate ``u``, the scan *defers* to any heap task of higher priority
  than ``u`` by re-pushing itself at ``u``'s key — this is what keeps
  decisions globally priority-ordered even when several ports are repaired
  at once.

Chunks are stored per *edge* (transmitter–receiver pair), not per port, as
key-sorted ``(priority key, chunk)`` pairs — the key is a total order, so
pairs sort and bisect with C-level tuple comparisons and the key function
runs exactly once per chunk, at activation.  Per-edge storage is what makes
scans cheap: every chunk on one edge is blocked by the *same* port owners,
so a scan only ever inspects each edge's top candidate (merged across the
port's edges through a small local heap) instead of walking over arbitrarily
long runs of same-edge chunks that one hot owner blocks.  Dropping a blocked
edge from the merge is safe: the blocking owner outranks all of the edge's
remaining chunks, and if it is later evicted, the eviction itself pushes a
scan for the freed port that re-covers them.

Amortised cost per slot is O((Δ + cascade) · degree · log n) against the
reference scheduler's Θ(E log E) full pass over all eligible chunks, where
degree is the number of active edges at a repaired port.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.core.packet import Chunk
from repro.exceptions import SimulationError
from repro.utils.ordering import chunk_priority_key

__all__ = ["MatchingIndex"]

#: A chunk's total-order priority key paired with the chunk itself.  Keys are
#: unique, so tuple comparison never falls through to comparing chunks.
_Key = Tuple[float, int, int, int]
_Entry = Tuple[_Key, Chunk]

#: Task kinds, ordered only for readability — the heap never compares them
#: (a strictly increasing sequence number sits before the kind in each entry).
_EVAL = 0
_SCAN_TX = 1
_SCAN_RX = 2


class MatchingIndex:
    """Maintains the greedy stable matching of an *eligible* chunk set under deltas.

    The owning :class:`~repro.core.queues.PendingChunkPool` notifies the index
    through :meth:`activate` (a chunk became eligible — freshly added or
    promoted from a future-activation bucket) and :meth:`discard` (an eligible
    chunk left the pool).  Repair work is deferred: events only push tasks,
    and :meth:`current_matching` drains the task heap before reporting, so a
    burst of completions and arrivals between two slots is settled in one
    priority-ordered pass.
    """

    __slots__ = (
        "_edges",
        "_tx_ports",
        "_rx_ports",
        "_tx_owner",
        "_rx_owner",
        "_matched",
        "_eligible",
        "_tasks",
        "_seq",
        "_tasks_done",
        "_evictions",
    )

    def __init__(self) -> None:
        # (tx, rx) → the edge's eligible (key, chunk) pairs, kept key-sorted.
        self._edges: Dict[Tuple[str, str], List[_Entry]] = {}
        # Port → the peer ports of its non-empty edges (scan adjacency).
        self._tx_ports: Dict[str, Set[str]] = {}
        self._rx_ports: Dict[str, Set[str]] = {}
        # Port → the matched entry currently owning it (both ports of a
        # matched chunk are owned by it, and only matched chunks own ports).
        self._tx_owner: Dict[str, _Entry] = {}
        self._rx_owner: Dict[str, _Entry] = {}
        self._matched: Set[_Entry] = set()
        # Chunk → its cached priority key; doubles as the eligibility set.
        self._eligible: Dict[Chunk, _Key] = {}
        # Pending repair tasks: (priority key, seq, kind, payload).  The seq
        # makes entries unique so kinds/payloads are never compared.
        self._tasks: List[Tuple[_Key, int, int, object]] = []
        self._seq = 0
        # Lifetime repair-work tallies (always on; one int add per event).
        self._tasks_done = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # events (pushed by the pool)
    # ------------------------------------------------------------------ #
    def activate(self, chunk: Chunk) -> None:
        """Track a chunk that just became eligible."""
        if chunk in self._eligible:
            raise SimulationError(f"chunk {chunk!r} is already tracked by the matching index")
        key = chunk_priority_key(chunk)
        self._eligible[chunk] = key
        tx, rx = chunk.transmitter, chunk.receiver
        edge_list = self._edges.get((tx, rx))
        if edge_list is None:
            edge_list = self._edges[(tx, rx)] = []
            self._tx_ports.setdefault(tx, set()).add(rx)
            self._rx_ports.setdefault(rx, set()).add(tx)
        insort(edge_list, (key, chunk))
        self._push(key, _EVAL, chunk)

    def discard(self, chunk: Chunk) -> None:
        """Stop tracking an eligible chunk that left the pool.

        Ignores chunks the index never saw (e.g. a future-bucket chunk being
        removed before its activation time), so the pool can forward every
        removal unconditionally.
        """
        key = self._eligible.pop(chunk, None)
        if key is None:
            return
        tx, rx = chunk.transmitter, chunk.receiver
        edge_list = self._edges[(tx, rx)]
        # (key,) sorts immediately before (key, chunk); keys are unique.
        del edge_list[bisect_left(edge_list, (key,))]
        if not edge_list:
            del self._edges[(tx, rx)]
            peers = self._tx_ports[tx]
            peers.remove(rx)
            if not peers:
                del self._tx_ports[tx]
            peers = self._rx_ports[rx]
            peers.remove(tx)
            if not peers:
                del self._rx_ports[rx]
        entry = (key, chunk)
        if entry in self._matched:
            # Removal rule: only lower-priority chunks on the two freed ports
            # can flip status — scan each port from the removed chunk's key.
            self._matched.remove(entry)
            del self._tx_owner[tx]
            del self._rx_owner[rx]
            self._push(key, _SCAN_TX, (tx, None))
            self._push(key, _SCAN_RX, (rx, None))

    def clear(self) -> None:
        """Forget every chunk and pending task."""
        self._edges.clear()
        self._tx_ports.clear()
        self._rx_ports.clear()
        self._tx_owner.clear()
        self._rx_owner.clear()
        self._matched.clear()
        self._eligible.clear()
        self._tasks.clear()
        self._tasks_done = 0
        self._evictions = 0

    def stats(self) -> Dict[str, int]:
        """Lifetime repair-work counters.

        ``tasks`` is the number of heap tasks drained (evals, scans and scan
        deferrals) and ``evictions`` the number of matched chunks displaced
        by higher-priority arrivals — together the size of the repair
        cascades that replaced full recomputes.
        """
        return {"tasks": self._tasks_done, "evictions": self._evictions}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def current_matching(self) -> List[Chunk]:
        """The greedy stable matching of the tracked eligible set, in priority order.

        Drains the pending repair tasks first; the result is bit-identical to
        ``greedy_stable_matching(eligible)`` recomputed from scratch.
        """
        self._drain()
        return [chunk for _, chunk in sorted(self._matched)]

    def __len__(self) -> int:
        return len(self._eligible)

    # ------------------------------------------------------------------ #
    # repair machinery
    # ------------------------------------------------------------------ #
    def _push(self, key: _Key, kind: int, payload: object) -> None:
        heappush(self._tasks, (key, self._seq, kind, payload))
        self._seq += 1

    def _drain(self) -> None:
        tasks = self._tasks
        while tasks:
            key, _, kind, payload = heappop(tasks)
            self._tasks_done += 1
            if kind == _EVAL:
                self._eval(payload)
            elif kind == _SCAN_TX:
                self._scan(payload[0], key, payload[1], is_tx=True)
            else:
                self._scan(payload[0], key, payload[1], is_tx=False)

    def _eval(self, chunk: Chunk) -> None:
        """Decide ``chunk`` at its own priority position."""
        key = self._eligible.get(chunk)
        if key is None or (key, chunk) in self._matched:
            return
        tx_owner = self._tx_owner.get(chunk.transmitter)
        rx_owner = self._rx_owner.get(chunk.receiver)
        # The priority key is a total order, so an owner's key is never equal
        # to ``key``; a lower key means the owner outranks (blocks) the chunk.
        if tx_owner is not None and tx_owner[0] < key:
            return
        if rx_owner is not None and rx_owner[0] < key:
            return
        self._match((key, chunk), tx_owner, rx_owner)

    def _match(
        self, entry: _Entry, tx_owner: Optional[_Entry], rx_owner: Optional[_Entry]
    ) -> None:
        """Match ``entry``, evicting the (strictly lower-priority) port owners."""
        _, chunk = entry
        if tx_owner is not None and rx_owner is not None and tx_owner[1] is rx_owner[1]:
            # Same-edge owner: both its ports pass straight to ``chunk``.
            self._matched.remove(tx_owner)
            self._evictions += 1
        else:
            if tx_owner is not None:
                # Evicted from the shared transmitter; its receiver is freed
                # and only chunks below the evictee can use it.
                self._matched.remove(tx_owner)
                self._evictions += 1
                del self._rx_owner[tx_owner[1].receiver]
                self._push(tx_owner[0], _SCAN_RX, (tx_owner[1].receiver, None))
            if rx_owner is not None:
                self._matched.remove(rx_owner)
                self._evictions += 1
                del self._tx_owner[rx_owner[1].transmitter]
                self._push(rx_owner[0], _SCAN_TX, (rx_owner[1].transmitter, None))
        self._tx_owner[chunk.transmitter] = entry
        self._rx_owner[chunk.receiver] = entry
        self._matched.add(entry)

    def _scan(
        self,
        port: str,
        from_key: _Key,
        merge: Optional[List[Tuple[_Key, str, int]]],
        *,
        is_tx: bool,
    ) -> None:
        """Find a new owner for a freed ``port`` among chunks at or below ``from_key``.

        Decisions made while this task was queued all had keys <= ``from_key``
        (the deferral rule below guarantees it), so if the port has an owner
        again it outranks every candidate and the scan is over.

        Candidates are merged across the port's edges through a local heap of
        ``(candidate key, peer port, index into the edge list)``.  ``merge``
        is ``None`` for a fresh scan (the heap is seeded by one bisect per
        edge) or the saved heap of a deferred scan — edge lists only mutate
        outside :meth:`_drain`, and a deferred scan is always re-popped within
        the same drain, so saved indices stay valid.
        """
        owners = self._tx_owner if is_tx else self._rx_owner
        if port in owners:
            return
        edges = self._edges
        if merge is None:
            peers = (self._tx_ports if is_tx else self._rx_ports).get(port)
            if not peers:
                return
            merge = []
            probe = (from_key,)
            for peer in peers:
                edge_list = edges[(port, peer) if is_tx else (peer, port)]
                index = bisect_left(edge_list, probe)
                if index < len(edge_list):
                    heappush(merge, (edge_list[index][0], peer, index))
        other_owners = self._rx_owner if is_tx else self._tx_owner
        tasks = self._tasks
        while merge:
            candidate_key, peer, index = merge[0]
            if tasks and tasks[0][0] < candidate_key:
                # A strictly higher-priority task is pending; defer so every
                # decision is made in global priority order.
                self._push(candidate_key, _SCAN_TX if is_tx else _SCAN_RX, (port, merge))
                return
            heappop(merge)
            # ``candidate`` is unmatched: matched chunks own both their
            # ports, and this port has no owner.
            other_owner = other_owners.get(peer)
            if other_owner is None or candidate_key < other_owner[0]:
                edge_list = edges[(port, peer) if is_tx else (peer, port)]
                candidate = edge_list[index][1]
                if is_tx:
                    self._match((candidate_key, candidate), None, other_owner)
                else:
                    self._match((candidate_key, candidate), other_owner, None)
                return
            # The peer port's owner outranks the candidate — and therefore
            # every remaining chunk on this edge, so the whole edge is done.
            # If that owner is evicted later, the eviction pushes a scan for
            # the freed peer port which re-covers these chunks.
