"""Incremental impact index: order statistics over pending chunk weights.

The worst-case-impact rule (Section III-B) needs, for every candidate edge
``e = (t, r)`` of an arriving packet, three numbers about the pending chunks
adjacent to ``e`` (sharing ``t`` or ``r``):

* ``|H_p(e)|`` — how many have weight ``>= w_p / d(e)`` (ties count as
  heavier: the pending chunk belongs to an earlier packet),
* ``|L_p(e)|`` — how many are strictly lighter,
* ``w(L_p(e))`` — the total weight of the lighter ones.

The naive evaluation re-scans the merged adjacency lists for every candidate,
making dispatch O(candidates × pending chunks) — the dominant per-packet cost
on dense fabrics.  :class:`ImpactIndex` maintains, per transmitter, per
receiver and per edge, a sorted multiset of pending chunk weights with exact
prefix sums, so each query is answered from three rank lookups by
inclusion–exclusion::

    answer(t, r) = answer_tx(t) + answer_rx(r) − answer_edge((t, r))

(the chunks counted twice are exactly those pending on ``(t, r)`` itself).

**Exactness is what makes the decomposition sound.**  Floating-point addition
is not associative, so a decomposed sum could differ from a scan's running
total in the last ulp — enough to flip an argmin and change a simulation.
The index therefore keeps weights as *exact scaled integers* (every finite
double is ``m · 2^-k``), sums them in integer arithmetic, and converts the
total back with one correctly-rounded division.  The result equals
``math.fsum`` over the same weights — the canonical definition the reference
scan in :func:`repro.core.dispatcher.compute_edge_impact` uses — bit for bit,
regardless of insertion order, deletion history or query interleaving.

Complexity: rank queries are two C-level bisections plus O(1) prefix lookups
per key; inserts and removals are binary-search list updates that lazily
invalidate the prefix-sum tail, which is re-consolidated at C speed
(``itertools.accumulate`` over integers) on the next query that needs it.
Amortised over the dispatcher's access pattern — bursts of many candidate
queries between pool mutations — a query costs O(log n) and a mutation
O(affected-tail) at C speed, replacing the former O(n) Python scan per
candidate.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import accumulate
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - import only for type checking
    from repro.core.packet import Chunk

__all__ = ["ImpactIndex", "WeightStats"]


class WeightStats:
    """Sorted multiset of one key's pending chunk weights, with exact sums.

    ``ws`` holds the weights ascending (duplicates allowed); ``ints`` holds
    the parallel exact integer mantissas ``ints[i] = ws[i] · 2**scale``.
    ``prefix`` caches exact prefix sums of ``ints`` up to the watermark
    ``_valid`` (``len(prefix) == _valid + 1`` always); a mutation at position
    ``p`` truncates the watermark to ``p`` and the next query re-extends it.

    ``counter`` is an optional shared one-element list (owned by the
    enclosing :class:`ImpactIndex`) incremented once per lazy prefix-sum
    re-consolidation — the observability hook sits on the rare repair path,
    never on the bisect-only queries.
    """

    __slots__ = ("ws", "ints", "prefix", "scale", "_valid", "_counter")

    def __init__(self, counter: list = None) -> None:
        self.ws: list = []
        self.ints: list = []
        self.prefix: list = [0]
        self.scale = 0
        self._valid = 0
        self._counter = counter

    def _exact_int(self, weight: float) -> int:
        """``weight · 2**self.scale`` as an exact integer, widening the scale on demand.

        Every finite double is ``num / den`` with ``den`` a power of two, so
        a common power-of-two scale per key keeps all mantissas integral.  A
        new weight needing a finer scale rescales the existing mantissas and
        cached prefix sums by a left shift — exact, and rare outside
        subnormal weights.
        """
        num, den = weight.as_integer_ratio()
        dbits = den.bit_length() - 1
        if dbits > self.scale:
            shift = dbits - self.scale
            self.ints = [value << shift for value in self.ints]
            self.prefix = [value << shift for value in self.prefix]
            self.scale = dbits
        return num << (self.scale - dbits)

    def _invalidate_from(self, pos: int) -> None:
        if pos < self._valid:
            self._valid = pos
            del self.prefix[pos + 1:]

    def insert(self, weight: float) -> None:
        """Add one weight to the multiset."""
        value = self._exact_int(weight)
        pos = bisect_left(self.ws, weight)
        self.ws.insert(pos, weight)
        self.ints.insert(pos, value)
        self._invalidate_from(pos)

    def remove(self, weight: float) -> None:
        """Remove one occurrence of ``weight`` (which must be present)."""
        pos = bisect_left(self.ws, weight)
        del self.ws[pos]
        del self.ints[pos]
        self._invalidate_from(pos)

    def __len__(self) -> int:
        return len(self.ws)

    def query(self, weight: float) -> Tuple[int, int, int]:
        """``(num_heavier, num_lighter, lighter_mantissa)`` for a query weight.

        Ties count as heavier (the pool's chunks belong to earlier packets).
        ``lighter_mantissa`` is the exact integer sum of the strictly lighter
        weights at this key's ``scale``.
        """
        pos = bisect_left(self.ws, weight)
        if pos > self._valid:
            # Re-consolidate the prefix sums up to the queried rank: one
            # C-level integer accumulate over the invalidated tail.
            tail = accumulate(self.ints[self._valid:pos], initial=self.prefix[-1])
            next(tail)  # skip the already-cached watermark entry
            self.prefix.extend(tail)
            self._valid = pos
            if self._counter is not None:
                self._counter[0] += 1
        return len(self.ws) - pos, pos, self.prefix[pos]


class ImpactIndex:
    """Per-transmitter / per-receiver / per-edge weight statistics.

    Mirrors the membership of a :class:`~repro.core.queues.PendingChunkPool`
    (the pool calls :meth:`add` and :meth:`discard` from its own mutators) and
    answers the dispatcher's adjacency statistics in O(log n) instead of a
    scan.  Only the chunk's ``(transmitter, receiver, weight)`` enters the
    index — the impact rule is oblivious to arrival times, ids and remaining
    work, so work debits need no index maintenance at all.
    """

    __slots__ = ("_tx", "_rx", "_edge", "_consolidations")

    def __init__(self) -> None:
        self._tx: Dict[str, WeightStats] = {}
        self._rx: Dict[str, WeightStats] = {}
        self._edge: Dict[Tuple[str, str], WeightStats] = {}
        # Shared consolidation tally, one cell handed to every WeightStats.
        self._consolidations = [0]

    @property
    def consolidations(self) -> int:
        """Lifetime count of lazy prefix-sum re-consolidations across all keys."""
        return self._consolidations[0]

    def add(self, chunk: "Chunk") -> None:
        """Index a chunk that entered the pool."""
        weight = chunk.weight
        tx = self._tx.get(chunk.transmitter)
        if tx is None:
            tx = self._tx[chunk.transmitter] = WeightStats(self._consolidations)
        tx.insert(weight)
        rx = self._rx.get(chunk.receiver)
        if rx is None:
            rx = self._rx[chunk.receiver] = WeightStats(self._consolidations)
        rx.insert(weight)
        edge = self._edge.get((chunk.transmitter, chunk.receiver))
        if edge is None:
            edge = self._edge[(chunk.transmitter, chunk.receiver)] = WeightStats(
                self._consolidations
            )
        edge.insert(weight)

    def discard(self, chunk: "Chunk") -> None:
        """Drop a chunk that left the pool."""
        weight = chunk.weight
        tx = self._tx[chunk.transmitter]
        tx.remove(weight)
        if not tx.ws:
            del self._tx[chunk.transmitter]
        rx = self._rx[chunk.receiver]
        rx.remove(weight)
        if not rx.ws:
            del self._rx[chunk.receiver]
        edge = self._edge[(chunk.transmitter, chunk.receiver)]
        edge.remove(weight)
        if not edge.ws:
            del self._edge[(chunk.transmitter, chunk.receiver)]

    def clear(self) -> None:
        """Forget every indexed chunk."""
        self._tx.clear()
        self._rx.clear()
        self._edge.clear()

    def query(self, transmitter: str, receiver: str, weight: float) -> Tuple[int, int, float]:
        """``(num_heavier, num_lighter, lighter_weight)`` for one candidate edge.

        Counts and sums range over the pending chunks adjacent to
        ``(transmitter, receiver)``; ties (weight equal to ``weight``) count
        as heavier.  ``lighter_weight`` is the exact sum of the strictly
        lighter weights, correctly rounded to a double — bit-identical to
        ``math.fsum`` over the same weights in any order.
        """
        num_heavier = 0
        num_lighter = 0
        parts = []  # (signed exact mantissa, scale) per contributing key
        tx = self._tx.get(transmitter)
        if tx is not None:
            heavier, lighter, mantissa = tx.query(weight)
            num_heavier += heavier
            num_lighter += lighter
            parts.append((mantissa, tx.scale))
        rx = self._rx.get(receiver)
        if rx is not None:
            heavier, lighter, mantissa = rx.query(weight)
            num_heavier += heavier
            num_lighter += lighter
            parts.append((mantissa, rx.scale))
        if tx is not None and rx is not None:
            # Chunks pending on (transmitter, receiver) itself sit in both
            # incidence multisets; subtract them once.
            edge = self._edge.get((transmitter, receiver))
            if edge is not None:
                heavier, lighter, mantissa = edge.query(weight)
                num_heavier -= heavier
                num_lighter -= lighter
                parts.append((-mantissa, edge.scale))
        if not parts:
            return 0, 0, 0.0
        common = max(scale for _, scale in parts)
        total = sum(mantissa << (common - scale) for mantissa, scale in parts)
        # Exact-integer total over the union multiset; int/int true division
        # is correctly rounded, so this equals fsum of the lighter weights.
        lighter_weight = total / (1 << common) if total else 0.0
        return num_heavier, num_lighter, lighter_weight
