"""Policy interfaces shared by the paper's algorithm and the baselines.

A *policy* is the pair of online decisions the simulator needs each slot:

* a :class:`Dispatcher` decides, at packet arrival, whether the packet uses
  the fixed link or which reconfigurable edge it is committed to (and hence
  how it is chunked);
* a :class:`Scheduler` decides, at each transmission slot, which pending
  chunks are transmitted; the returned set must use each transmitter and each
  receiver at most once (a matching in the reconfigurable network).

The paper's algorithm ALG is the pair (impact dispatcher, greedy
stable-matching scheduler); the baselines in :mod:`repro.baselines` implement
the same interfaces with different decision rules so that every policy runs
on the identical simulation engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, List, Optional

from repro.core.packet import Assignment, Chunk, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.queues import PendingChunkPool
    from repro.network.topology import TwoTierTopology
    from repro.simulation.profiling import PhaseTimings

__all__ = ["Dispatcher", "Scheduler", "Policy"]


class Dispatcher(abc.ABC):
    """Online dispatch rule: commit each arriving packet to a route."""

    #: Human-readable name used in experiment reports.
    name: str = "dispatcher"

    @abc.abstractmethod
    def dispatch(
        self,
        packet: Packet,
        topology: "TwoTierTopology",
        pool: "PendingChunkPool",
        now: int,
    ) -> Assignment:
        """Assign ``packet`` to a fixed link or a reconfigurable edge.

        Parameters
        ----------
        packet:
            The arriving packet (its arrival slot equals ``now``).
        topology:
            The (frozen) network topology.
        pool:
            The current pending-chunk pool; contains every chunk already
            dispatched but not yet fully transmitted.  Because packets are
            dispatched one at a time in arrival order, the pool is exactly
            the paper's set ``B_p`` restricted to pending chunks.
        now:
            The current transmission slot.

        Returns
        -------
        Assignment
            Either an :class:`~repro.core.packet.EdgeAssignment` (with chunks
            created) or a :class:`~repro.core.packet.FixedLinkAssignment`.
        """

    def reset(self) -> None:
        """Clear any per-run internal state (default: nothing to clear)."""

    def dispatch_sharing_key(self) -> Optional[Hashable]:
        """Key identifying dispatchers that compute the *same* dispatch rule.

        :meth:`~repro.simulation.engine.SimulationEngine.run_multi` groups
        lanes whose dispatchers return the same non-``None`` key and lets
        them share one impact evaluation per (arrival, pool state) through a
        :class:`~repro.core.dispatcher.SharedDispatchMemo`.  A dispatcher
        returning a non-``None`` key must expose a writable ``shared_memo``
        attribute and consult it in :meth:`dispatch`.  The default — no
        sharing — is right for any stateful or randomised rule.
        """
        return None


class Scheduler(abc.ABC):
    """Per-slot transmission rule: pick the chunks transmitted this slot."""

    #: Human-readable name used in experiment reports.
    name: str = "scheduler"

    #: Whether the scheduler reads the pool's incremental
    #: :class:`~repro.core.matching_index.MatchingIndex` when one is present.
    #: Indexed-engine lanes only pay for maintaining the index when their
    #: scheduler opts in (the stable-matching scheduler does by default).
    uses_matching_index: bool = False

    @abc.abstractmethod
    def select_matching(
        self,
        pool: "PendingChunkPool",
        topology: "TwoTierTopology",
        now: int,
    ) -> List[Chunk]:
        """Return the chunks to transmit during slot ``[now, now+1)``.

        The returned chunks must be pending, eligible at ``now``, and their
        edges must form a matching: no two returned chunks may share a
        transmitter or a receiver.  The engine validates this and raises
        :class:`~repro.exceptions.SchedulingError` otherwise.
        """

    def reset(self) -> None:
        """Clear any per-run internal state (default: nothing to clear)."""


@dataclass
class Policy:
    """A named (dispatcher, scheduler) pair runnable by the simulation engine."""

    name: str
    dispatcher: Dispatcher
    scheduler: Scheduler
    #: Optional phase-timing sink.  When set (``timed_policy`` sets it), the
    #: engine times its own transmission block into ``phase_timings.spans``;
    #: the dispatcher/scheduler proxies time their phases themselves.  This
    #: is the explicit contract that replaced the engine's old ``getattr``
    #: probe for a dynamically attached attribute.
    phase_timings: Optional["PhaseTimings"] = None

    def reset(self) -> None:
        """Reset both components before a fresh simulation run."""
        self.dispatcher.reset()
        self.scheduler.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Policy({self.name!r}, dispatcher={self.dispatcher.name!r}, "
            f"scheduler={self.scheduler.name!r})"
        )
