"""Greedy stable matching over pending chunks (Section III-A / III-C).

A matching ``M`` of chunks (each chunk occupies its assigned edge) is *stable*
with respect to the chunk priority order if every pending chunk not in ``M``
is *blocked* by some chunk in ``M``: the two chunks share a transmitter or a
receiver and the blocking chunk does not have lower priority (its weight is at
least as large; ties resolved by earlier packet arrival).

Because priorities are symmetric the stable matching can be computed greedily:
process chunks in decreasing priority and add a chunk whenever both endpoints
of its edge are still free.  This module provides the greedy construction, a
stability verifier used by the test-suite, and an edge-level variant that
matches the description in Section I-B (edge weights = heaviest waiting
packet).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.core.packet import Chunk
from repro.utils.ordering import chunk_priority_key

__all__ = [
    "greedy_stable_matching",
    "is_chunk_matching",
    "is_stable_matching",
    "blocking_chunk",
    "greedy_stable_matching_on_edges",
    "is_stable_edge_matching",
]


def greedy_stable_matching(chunks: Iterable[Chunk]) -> List[Chunk]:
    """Compute the greedy stable matching over ``chunks``.

    Chunks are processed in decreasing weight (ties: earlier packet arrival,
    then packet id / chunk index); a chunk is selected when neither its
    transmitter nor its receiver is already used by a selected chunk.

    Returns the selected chunks in processing order.
    """
    selected: List[Chunk] = []
    used_transmitters: Set[str] = set()
    used_receivers: Set[str] = set()
    for chunk in sorted(chunks, key=chunk_priority_key):
        if chunk.transmitter in used_transmitters or chunk.receiver in used_receivers:
            continue
        selected.append(chunk)
        used_transmitters.add(chunk.transmitter)
        used_receivers.add(chunk.receiver)
    return selected


def is_chunk_matching(chunks: Sequence[Chunk]) -> bool:
    """Whether ``chunks`` use every transmitter and receiver at most once."""
    transmitters = [c.transmitter for c in chunks]
    receivers = [c.receiver for c in chunks]
    return len(set(transmitters)) == len(transmitters) and len(set(receivers)) == len(receivers)


def blocking_chunk(chunk: Chunk, matching: Sequence[Chunk]) -> Chunk | None:
    """Return a chunk of ``matching`` that blocks ``chunk``, if any.

    A matched chunk ``c'`` blocks ``c`` when they share a transmitter or a
    receiver and ``c'`` does not come after ``c`` in the priority order
    (i.e. ``w_{c'} >= w_c``, ties resolved toward the earlier arrival).
    """
    key = chunk_priority_key(chunk)
    for other in matching:
        if other is chunk:
            continue
        if other.transmitter == chunk.transmitter or other.receiver == chunk.receiver:
            if chunk_priority_key(other) <= key:
                return other
    return None


def is_stable_matching(matching: Sequence[Chunk], pending: Iterable[Chunk]) -> bool:
    """Verify that ``matching`` is a stable matching of ``pending`` chunks.

    Checks (i) the matching property and (ii) that every pending chunk not in
    the matching is blocked by some matched chunk.
    """
    if not is_chunk_matching(matching):
        return False
    matched = set(matching)
    for chunk in pending:
        if chunk in matched:
            continue
        if blocking_chunk(chunk, matching) is None:
            return False
    return True


def greedy_stable_matching_on_edges(
    edge_weights: Mapping[Tuple[str, str], float],
) -> List[Tuple[str, str]]:
    """Greedy stable matching on a weighted bipartite edge set.

    This is the formulation of Section I-B: every edge ``(t, r)`` carries the
    weight of the heaviest packet waiting to use it, and the stable matching
    with respect to those symmetric priorities is computed greedily.  Ties are
    broken lexicographically by edge name for determinism.
    """
    ordered = sorted(edge_weights.items(), key=lambda item: (-item[1], item[0]))
    used_t: Set[str] = set()
    used_r: Set[str] = set()
    matching: List[Tuple[str, str]] = []
    for (t, r), _weight in ordered:
        if t in used_t or r in used_r:
            continue
        matching.append((t, r))
        used_t.add(t)
        used_r.add(r)
    return matching


def is_stable_edge_matching(
    matching: Sequence[Tuple[str, str]],
    edge_weights: Mapping[Tuple[str, str], float],
) -> bool:
    """Verify stability of an edge-level matching under symmetric edge weights.

    Every non-matched edge must be adjacent to a matched edge of weight at
    least as large (Section III-A's definition of blocking).
    """
    matched = set(matching)
    # Matching property.
    ts = [t for (t, _r) in matching]
    rs = [r for (_t, r) in matching]
    if len(set(ts)) != len(ts) or len(set(rs)) != len(rs):
        return False
    used_t: Dict[str, float] = {}
    used_r: Dict[str, float] = {}
    for (t, r) in matching:
        weight = edge_weights[(t, r)]
        used_t[t] = weight
        used_r[r] = weight
    for edge, weight in edge_weights.items():
        if edge in matched:
            continue
        t, r = edge
        blocked = (t in used_t and used_t[t] >= weight) or (r in used_r and used_r[r] >= weight)
        if not blocked:
            return False
    return True
