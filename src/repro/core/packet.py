"""Packet, chunk and assignment data types (Section II / III-B of the paper).

A :class:`Packet` is the unit of demand: it arrives online at an integer time
slot, carries a positive weight and must be routed from its source to its
destination.  Packets are of uniform size 1 (the paper argues this is without
loss of generality in the speed-augmentation model).

When the dispatcher assigns a packet to a reconfigurable edge ``e`` it is
split into ``d(e)`` :class:`Chunk` objects of size ``1/d(e)`` and weight
``w_p / d(e)``; each chunk crosses the edge in exactly one slot at speed 1.
The dispatcher's decision is recorded as an :class:`EdgeAssignment` or a
:class:`FixedLinkAssignment` (direct source→destination link).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.exceptions import DispatchError

__all__ = [
    "Packet",
    "Chunk",
    "EdgeAssignment",
    "FixedLinkAssignment",
    "Assignment",
    "split_into_chunks",
]


@dataclass(frozen=True)
class Packet:
    """A unit-size packet of the online input sequence.

    Attributes
    ----------
    packet_id:
        Unique non-negative integer identifier; also used for deterministic
        tie-breaking (packets with smaller ids were handed to the dispatcher
        earlier).
    source, destination:
        Names of the source and destination nodes.
    weight:
        Positive weight ``w_p`` (e.g. flow priority or remaining flow size).
    arrival:
        Integer arrival slot ``a_p >= 1``.  Fractional arrival times must be
        ceiled by the workload layer before constructing the packet, as in
        Section II of the paper.
    """

    packet_id: int
    source: str
    destination: str
    weight: float
    arrival: int

    def __post_init__(self) -> None:
        if self.packet_id < 0:
            raise ValueError(f"packet_id must be non-negative, got {self.packet_id}")
        if not self.weight > 0:
            raise ValueError(f"packet weight must be positive, got {self.weight}")
        if int(self.arrival) != self.arrival or self.arrival < 1:
            raise ValueError(f"packet arrival must be an integer >= 1, got {self.arrival}")

    @property
    def size(self) -> float:
        """Packet size; always 1 (uniform-size assumption of Section II)."""
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(id={self.packet_id}, {self.source}->{self.destination}, "
            f"w={self.weight}, a={self.arrival})"
        )


class Chunk:
    """A ``1/d(e)``-sized piece of a packet assigned to reconfigurable edge ``e``.

    The chunk carries the scheduling state mutated by the simulation engine:
    ``remaining_work`` (1.0 when untransmitted, 0.0 when fully transmitted)
    and, once delivered, the slot in which it crossed its edge and the time it
    reached the destination.
    """

    __slots__ = (
        "packet",
        "index",
        "size",
        "weight",
        "transmitter",
        "receiver",
        "eligible_time",
        "tail_delay",
        "remaining_work",
        "completed_slot",
        "delivery_time",
    )

    def __init__(
        self,
        packet: Packet,
        index: int,
        size: float,
        weight: float,
        transmitter: str,
        receiver: str,
        eligible_time: int,
        tail_delay: int,
    ) -> None:
        if index < 1:
            raise ValueError(f"chunk index must be >= 1, got {index}")
        if not 0 < size <= 1:
            raise ValueError(f"chunk size must lie in (0, 1], got {size}")
        if not weight > 0:
            raise ValueError(f"chunk weight must be positive, got {weight}")
        self.packet = packet
        self.index = index
        self.size = size
        self.weight = weight
        self.transmitter = transmitter
        self.receiver = receiver
        self.eligible_time = eligible_time
        self.tail_delay = tail_delay
        self.remaining_work: float = 1.0
        self.completed_slot: Optional[int] = None
        self.delivery_time: Optional[float] = None

    @property
    def edge(self) -> Tuple[str, str]:
        """The ``(transmitter, receiver)`` edge this chunk is assigned to."""
        return (self.transmitter, self.receiver)

    @property
    def pending(self) -> bool:
        """Whether the chunk still has untransmitted work."""
        return self.remaining_work > 0

    @property
    def delivered(self) -> bool:
        """Whether the chunk has fully reached its destination."""
        return self.delivery_time is not None

    def latency(self) -> float:
        """Weighted latency ``w_c · (delivery_time − a_p)`` of a delivered chunk."""
        if self.delivery_time is None:
            raise DispatchError(f"chunk {self!r} has not been delivered yet")
        return self.weight * (self.delivery_time - self.packet.arrival)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "delivered" if self.delivered else ("pending" if self.pending else "in-flight")
        return (
            f"Chunk(p{self.packet.packet_id}#{self.index}, edge={self.edge}, "
            f"w={self.weight:.4g}, {state})"
        )


@dataclass
class EdgeAssignment:
    """Assignment of a packet to a reconfigurable edge, with its chunks.

    Attributes
    ----------
    packet:
        The assigned packet.
    transmitter, receiver:
        The chosen edge ``e_p``.
    edge_delay:
        ``d(e_p)``; the packet is split into this many chunks.
    impact:
        The dispatcher's worst-case impact estimate ``Δ_p(e_p)``; this is the
        value the analysis assigns to the dual variable ``α_p``.
    chunks:
        The ``d(e_p)`` chunks created for the packet.
    """

    packet: Packet
    transmitter: str
    receiver: str
    edge_delay: int
    impact: float
    chunks: List[Chunk] = field(default_factory=list)

    @property
    def edge(self) -> Tuple[str, str]:
        """The chosen ``(transmitter, receiver)`` pair."""
        return (self.transmitter, self.receiver)

    @property
    def uses_fixed_link(self) -> bool:
        """Always ``False`` for edge assignments."""
        return False


@dataclass
class FixedLinkAssignment:
    """Assignment of a packet to the direct source→destination link.

    Attributes
    ----------
    packet:
        The assigned packet.
    link_delay:
        ``d_l(p)``; the packet completes at ``a_p + d_l(p)`` with weighted
        latency ``w_p · d_l(p)``.
    impact:
        The value assigned to the dual variable ``α_p``; the paper sets it to
        ``w_p · d_l(p)`` for fixed-link packets.
    """

    packet: Packet
    link_delay: int
    impact: float

    @property
    def uses_fixed_link(self) -> bool:
        """Always ``True`` for fixed-link assignments."""
        return True

    @property
    def completion_time(self) -> float:
        """Time the packet reaches its destination via the fixed link."""
        return self.packet.arrival + self.link_delay

    @property
    def weighted_latency(self) -> float:
        """Weighted latency ``w_p · d_l(p)`` incurred on the fixed link."""
        return self.packet.weight * self.link_delay


Assignment = Union[EdgeAssignment, FixedLinkAssignment]


def split_into_chunks(
    packet: Packet,
    transmitter: str,
    receiver: str,
    edge_delay: int,
    head_delay: int = 0,
    tail_delay: int = 0,
) -> List[Chunk]:
    """Split ``packet`` into ``edge_delay`` chunks for edge ``(transmitter, receiver)``.

    Each chunk has size ``1/d(e)`` and weight ``w_p/d(e)`` (Section III-B).
    Chunks become eligible for transmission once the packet has traversed the
    source→transmitter attachment edge, i.e. at ``a_p + head_delay``.
    """
    if edge_delay < 1:
        raise DispatchError(f"edge delay must be >= 1, got {edge_delay}")
    size = 1.0 / edge_delay
    weight = packet.weight / edge_delay
    eligible = packet.arrival + head_delay
    return [
        Chunk(
            packet=packet,
            index=i + 1,
            size=size,
            weight=weight,
            transmitter=transmitter,
            receiver=receiver,
            eligible_time=eligible,
            tail_delay=tail_delay,
        )
        for i in range(edge_delay)
    ]
