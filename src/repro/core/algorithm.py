"""The complete online algorithm ALG of the paper.

ALG is the combination of

* the worst-case-impact dispatcher (:class:`~repro.core.dispatcher.ImpactDispatcher`,
  Section III-B), which commits each arriving packet to either the direct
  fixed link or one specific transmitter–receiver edge, splitting it into
  ``d(e)`` chunks; and
* the greedy stable-matching scheduler
  (:class:`~repro.core.scheduler.StableMatchingScheduler`, Section III-C),
  which at each transmission slot sends a stable matching of pending chunks.

Theorem 1 of the paper shows this pair is ``2·(2/ε + 1)``-competitive for
total weighted (fractional) latency when run with a ``(2+ε)`` speedup.
"""

from __future__ import annotations

from repro.core.dispatcher import ImpactDispatcher
from repro.core.interfaces import Policy
from repro.core.scheduler import StableMatchingScheduler

__all__ = ["OpportunisticLinkScheduler", "make_paper_policy", "theoretical_competitive_ratio"]


class OpportunisticLinkScheduler(Policy):
    """The paper's algorithm ALG as a runnable :class:`~repro.core.interfaces.Policy`.

    Parameters
    ----------
    record_decisions:
        Forwarded to the dispatcher; when set, every dispatch decision keeps
        its full per-edge impact breakdown (used by analysis and by the
        Figure 2 reproduction).
    incremental_scheduler:
        Forwarded to the scheduler as ``incremental``; ``False`` keeps the
        from-scratch greedy matching pass even on indexed-engine pools.
        Decisions are identical either way — benchmarks use the flag to
        isolate the scheduler-phase cost of the incremental repair.

    Examples
    --------
    >>> from repro.network import single_tier_crossbar
    >>> from repro.simulation import SimulationEngine
    >>> from repro.workloads import permutation_workload
    >>> topo = single_tier_crossbar(4)
    >>> packets = permutation_workload(topo, num_packets=16, seed=0)
    >>> result = SimulationEngine(topo, OpportunisticLinkScheduler()).run(packets)
    >>> result.all_delivered
    True
    """

    def __init__(
        self, record_decisions: bool = False, incremental_scheduler: bool = True
    ) -> None:
        super().__init__(
            name="ALG(stable-matching+impact-dispatch)",
            dispatcher=ImpactDispatcher(record_decisions=record_decisions),
            scheduler=StableMatchingScheduler(incremental=incremental_scheduler),
        )

    @property
    def impact_dispatcher(self) -> ImpactDispatcher:
        """The underlying impact dispatcher (typed accessor)."""
        assert isinstance(self.dispatcher, ImpactDispatcher)
        return self.dispatcher


def make_paper_policy(record_decisions: bool = False) -> OpportunisticLinkScheduler:
    """Factory returning a fresh instance of the paper's algorithm ALG."""
    return OpportunisticLinkScheduler(record_decisions=record_decisions)


def theoretical_competitive_ratio(epsilon: float) -> float:
    """The Theorem 1 bound ``2·(2/ε + 1)`` for speedup ``2 + ε``.

    Parameters
    ----------
    epsilon:
        The augmentation parameter ``ε > 0``.

    Raises
    ------
    ValueError
        If ``epsilon`` is not strictly positive.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    return 2.0 * (2.0 / epsilon + 1.0)
