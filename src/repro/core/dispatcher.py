"""The worst-case-impact dispatcher of Section III-B.

Upon arrival of packet ``p`` the dispatcher evaluates, for every candidate
reconfigurable edge ``e = (t, r) ∈ E_p``, the *worst-case impact* of assigning
``p`` to ``e``:

.. math::

    Δ_p(e) = w_p · ( d(src,t) + (d(e)+1)/2 + d(r,dest) )
             + w_p · |H_p(e)| + d(e) · w(L_p(e))

where ``A_p(e)`` is the set of pending chunks (of earlier-arrived packets)
assigned to an edge sharing ``t`` or ``r``, ``H_p(e) ⊆ A_p(e)`` are the chunks
that may delay ``p``'s chunks (weight at least ``w_p/d(e)``; ties favour the
earlier arrival, i.e. the existing chunk) and ``L_p(e) = A_p(e) \\ H_p(e)`` are
the chunks ``p`` may delay.

The packet is assigned to the edge minimising ``Δ_p(e)`` unless a direct fixed
link exists whose weighted latency ``w_p · d_l(p)`` is no larger, in which
case the fixed link is used.  The chosen value also becomes the dual variable
``α_p`` used throughout the competitive analysis (Section IV-B).

Two evaluation paths compute the same numbers:

* the **reference scan** (:func:`compute_edge_impact`) walks
  ``pool.adjacent_chunks`` per candidate — O(pending chunks) each;
* the **indexed path** (:func:`compute_edge_impact_indexed`) reads the
  pool's incremental :class:`~repro.core.impact_index.ImpactIndex` —
  O(log pending chunks) each.  The dispatcher picks it automatically
  whenever the pool maintains an index (``engine="indexed"``).

``w(L_p(e))`` is canonically defined as the *exact* sum of the lighter
weights, correctly rounded once (``math.fsum`` in the scan, exact integer
arithmetic in the index), so both paths produce bit-identical impacts — and
hence bit-identical simulations — on any workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.interfaces import Dispatcher
from repro.core.packet import (
    Assignment,
    EdgeAssignment,
    FixedLinkAssignment,
    Packet,
    split_into_chunks,
)
from repro.core.queues import PendingChunkPool
from repro.exceptions import RoutingError, SimulationError
from repro.network.topology import TwoTierTopology

__all__ = [
    "ImpactDispatcher",
    "EdgeImpact",
    "SharedDispatchMemo",
    "compute_edge_impact",
    "compute_edge_impact_auto",
    "compute_edge_impact_indexed",
]


@dataclass(frozen=True)
class EdgeImpact:
    """Breakdown of the worst-case impact ``Δ_p(e)`` of one candidate edge.

    Attributes
    ----------
    transmitter, receiver:
        The candidate edge.
    edge_delay:
        ``d(e)``.
    self_latency:
        ``w_p · (d(src,t) + (d(e)+1)/2 + d(r,dest))`` — the weighted latency
        of ``p``'s own chunks when they are never blocked by other packets.
    blocked_by_term:
        ``w_p · |H_p(e)|`` — worst-case latency ``p`` suffers from heavier
        pending chunks.
    blocks_term:
        ``d(e) · w(L_p(e))`` — worst-case latency ``p`` inflicts on lighter
        pending chunks.
    num_heavier, num_lighter:
        ``|H_p(e)|`` and ``|L_p(e)|``.
    """

    transmitter: str
    receiver: str
    edge_delay: int
    self_latency: float
    blocked_by_term: float
    blocks_term: float
    num_heavier: int
    num_lighter: int

    @property
    def edge(self) -> Tuple[str, str]:
        """The candidate ``(transmitter, receiver)`` pair."""
        return (self.transmitter, self.receiver)

    @property
    def total(self) -> float:
        """The worst-case impact ``Δ_p(e)``."""
        return self.self_latency + self.blocked_by_term + self.blocks_term


def _scan_adjacency_stats(
    pool: PendingChunkPool, transmitter: str, receiver: str, chunk_weight: float
) -> Tuple[int, int, float]:
    """Reference ``(num_heavier, num_lighter, lighter_weight)`` via a pool scan.

    This is the canonical definition of the three adjacency statistics: a
    walk over ``A_p(e)`` counting the ``H``/``L`` split, with the lighter
    weights summed *exactly* (``math.fsum``, i.e. the correctly rounded exact
    sum, which no iteration order can change).  The incremental index must —
    and does — reproduce these values bit for bit.
    """
    num_heavier = 0
    lighter: List[float] = []
    for chunk in pool.adjacent_chunks(transmitter, receiver):
        # Ties go to the already-pending chunk (it belongs to an earlier
        # packet), so equality counts towards H_p(e).
        if chunk.weight >= chunk_weight:
            num_heavier += 1
        else:
            lighter.append(chunk.weight)
    return num_heavier, len(lighter), math.fsum(lighter)


def _make_impact(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    d_e: int,
    num_heavier: int,
    num_lighter: int,
    lighter_weight: float,
) -> EdgeImpact:
    """Assemble the :class:`EdgeImpact` breakdown from the adjacency statistics."""
    head = topology.head_delay(transmitter)
    tail = topology.tail_delay(receiver)
    self_latency = packet.weight * (head + (d_e + 1) / 2.0 + tail)
    return EdgeImpact(
        transmitter=transmitter,
        receiver=receiver,
        edge_delay=d_e,
        self_latency=self_latency,
        blocked_by_term=packet.weight * num_heavier,
        blocks_term=d_e * lighter_weight,
        num_heavier=num_heavier,
        num_lighter=num_lighter,
    )


def compute_edge_impact(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    pool: PendingChunkPool,
) -> EdgeImpact:
    """Compute ``Δ_p(e)`` for ``packet`` on edge ``(transmitter, receiver)``.

    The pending chunks currently in ``pool`` play the role of the paper's set
    ``B_p`` (chunks of packets that arrived before ``p`` and are still
    pending); chunks adjacent to the edge form ``A_p(e)``.  This is the
    O(pending-chunks) reference scan; :func:`compute_edge_impact_indexed`
    answers the same query from the incremental index.
    """
    d_e = topology.edge_delay(transmitter, receiver)
    chunk_weight = packet.weight / d_e
    num_heavier, num_lighter, lighter_weight = _scan_adjacency_stats(
        pool, transmitter, receiver, chunk_weight
    )
    return _make_impact(
        packet, transmitter, receiver, topology, d_e, num_heavier, num_lighter, lighter_weight
    )


def compute_edge_impact_indexed(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    pool: PendingChunkPool,
) -> EdgeImpact:
    """Compute ``Δ_p(e)`` from the pool's incremental impact index.

    Requires a pool constructed with ``impact_index=True`` (or with the index
    enabled later); produces an :class:`EdgeImpact` bit-identical to
    :func:`compute_edge_impact` on the same pool state.
    """
    index = pool.impact_index
    if index is None:
        raise SimulationError(
            "compute_edge_impact_indexed needs a pool with its impact index "
            "enabled; construct PendingChunkPool(impact_index=True) or call "
            "enable_impact_index()"
        )
    d_e = topology.edge_delay(transmitter, receiver)
    chunk_weight = packet.weight / d_e
    num_heavier, num_lighter, lighter_weight = index.query(
        transmitter, receiver, chunk_weight
    )
    return _make_impact(
        packet, transmitter, receiver, topology, d_e, num_heavier, num_lighter, lighter_weight
    )


def compute_edge_impact_auto(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    pool: PendingChunkPool,
) -> EdgeImpact:
    """Compute ``Δ_p(e)`` through the fastest path the pool supports.

    Uses the incremental index when the pool maintains one (the
    ``engine="indexed"`` lanes) and the reference scan otherwise (reference
    lanes, duck-typed pools).  Every dispatcher that records or compares
    impacts should call this instead of hard-wiring the scan, so baseline
    lanes benefit from the index they already pay to maintain.
    """
    if getattr(pool, "impact_index", None) is not None:
        return compute_edge_impact_indexed(packet, transmitter, receiver, topology, pool)
    return compute_edge_impact(packet, transmitter, receiver, topology, pool)


#: A dispatch decision reduced to plain data: ``(use_fixed, transmitter,
#: receiver, edge_delay, impact)``.  Small, immutable and exactly comparable,
#: which is what the shared-dispatch memo stores and validates.
_Decision = Tuple[bool, Optional[str], Optional[str], int, float]


class SharedDispatchMemo:
    """Cross-lane dispatch cache used by :meth:`SimulationEngine.run_multi`.

    Policy lanes whose dispatchers share the impact rule register one memo
    per group.  The first lane to dispatch an arrival computes the decision
    and stores it under ``(packet_id, pool fingerprint)``; every other lane
    whose pool holds an impact-equivalent chunk multiset (same fingerprint)
    reuses it instead of re-evaluating all candidate edges.  Lanes whose
    pools have diverged (different schedulers transmit different chunks) miss
    the memo and fall back to their own evaluation, so sharing is always
    sound — never required.

    Entries are evicted once every lane of the group has dispatched the
    packet, so the memo holds at most the arrival window the round-robin
    stepper keeps in flight anyway.  With ``validate=True`` every hit is
    re-derived from the hitting lane's own pool and compared exactly — the
    cross-lane invariant check behind the engine's
    ``validate_shared_dispatch`` debug flag.
    """

    __slots__ = ("group_size", "validate", "hits", "misses", "_entries")

    def __init__(self, group_size: int, validate: bool = False) -> None:
        if group_size < 2:
            raise SimulationError(
                f"a shared-dispatch group needs at least two lanes, got {group_size}"
            )
        self.group_size = group_size
        self.validate = validate
        self.hits = 0
        self.misses = 0
        # packet id -> [lanes served, {pool fingerprint: decision}]
        self._entries: Dict[int, list] = {}

    def lookup(self, packet_id: int, fingerprint: int) -> Optional[_Decision]:
        """The memoised decision for an impact-equivalent pool, if any."""
        entry = self._entries.get(packet_id)
        if entry is None:
            return None
        decision = entry[1].get(fingerprint)
        if decision is not None:
            self.hits += 1
            self._account(packet_id, entry)
        return decision

    def store(self, packet_id: int, fingerprint: int, decision: _Decision) -> None:
        """Record a freshly computed decision for other lanes to reuse."""
        entry = self._entries.get(packet_id)
        if entry is None:
            entry = self._entries[packet_id] = [0, {}]
        entry[1][fingerprint] = decision
        self.misses += 1
        self._account(packet_id, entry)

    def _account(self, packet_id: int, entry: list) -> None:
        entry[0] += 1
        if entry[0] >= self.group_size:
            del self._entries[packet_id]

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the number of in-flight entries."""
        return {"hits": self.hits, "misses": self.misses, "pending": len(self._entries)}


class ImpactDispatcher(Dispatcher):
    """The paper's greedy minimum-worst-case-impact dispatch rule."""

    name = "impact"

    def __init__(self, record_decisions: bool = False) -> None:
        #: When ``record_decisions`` is set, every dispatch stores the full
        #: per-edge impact breakdown for later inspection (used by the
        #: Figure 2 reproduction and by the analysis tests).
        self.record_decisions = record_decisions
        self.decision_log: List[Dict[str, object]] = []
        #: Set by ``SimulationEngine.run_multi`` for lanes grouped into a
        #: shared-dispatch lane; ``None`` for every single-policy run.
        self.shared_memo: Optional[SharedDispatchMemo] = None

    def reset(self) -> None:
        """Clear the decision log and detach from any shared-dispatch group."""
        self.decision_log = []
        self.shared_memo = None

    def dispatch_sharing_key(self) -> Optional[Hashable]:
        """All plain impact dispatchers compute one rule and may share lanes.

        Recording dispatchers keep their own full per-candidate logs, which a
        memo hit would silently truncate, so they never share.
        """
        return None if self.record_decisions else ("impact",)

    # ------------------------------------------------------------------ #
    def evaluate_candidates(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
    ) -> List[EdgeImpact]:
        """Return the impact breakdown of every candidate edge of ``packet``.

        Uses the pool's incremental index when it maintains one, the
        reference scan otherwise (e.g. for the duck-typed naive pools of the
        differential harness); the breakdowns are bit-identical either way.
        """
        candidates = topology.candidate_edges(packet.source, packet.destination)
        return [
            compute_edge_impact_auto(packet, t, r, topology, pool)
            for (t, r) in candidates
        ]

    # ------------------------------------------------------------------ #
    def _decide(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
    ) -> _Decision:
        """Fold the dispatch rule into a plain :data:`_Decision` tuple.

        Streams the candidate impacts through a running minimum instead of
        materialising the full ``List[EdgeImpact]`` (and its per-candidate
        dataclass objects) — the hot path when ``record_decisions`` is off.
        The float expressions mirror :func:`compute_edge_impact` term for
        term, so the folded minimum is bit-identical to the materialised one.
        """
        index = getattr(pool, "impact_index", None)
        weight = packet.weight
        best_total: Optional[float] = None
        best_edge: Optional[Tuple[str, str]] = None
        best_delay = 0
        for transmitter, receiver in topology.candidate_edges(
            packet.source, packet.destination
        ):
            d_e = topology.edge_delay(transmitter, receiver)
            chunk_weight = weight / d_e
            if index is not None:
                num_heavier, _, lighter_weight = index.query(
                    transmitter, receiver, chunk_weight
                )
            else:
                num_heavier, _, lighter_weight = _scan_adjacency_stats(
                    pool, transmitter, receiver, chunk_weight
                )
            self_latency = weight * (
                topology.head_delay(transmitter)
                + (d_e + 1) / 2.0
                + topology.tail_delay(receiver)
            )
            total = self_latency + weight * num_heavier + d_e * lighter_weight
            if (
                best_total is None
                or (total, (transmitter, receiver)) < (best_total, best_edge)
            ):
                best_total = total
                best_edge = (transmitter, receiver)
                best_delay = d_e

        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        if best_total is None and not has_fixed:
            raise RoutingError(
                f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                "has no reconfigurable edge and no fixed link"
            )
        if has_fixed:
            fixed_latency = weight * topology.fixed_link_delay(
                packet.source, packet.destination
            )
            if best_total is None or fixed_latency <= best_total:
                return (True, None, None, 0, fixed_latency)
        assert best_edge is not None and best_total is not None
        return (False, best_edge[0], best_edge[1], best_delay, best_total)

    def _build_assignment(
        self, packet: Packet, topology: TwoTierTopology, decision: _Decision
    ) -> Assignment:
        """Materialise a decision tuple into a (lane-local) assignment."""
        use_fixed, transmitter, receiver, edge_delay, impact = decision
        if use_fixed:
            return FixedLinkAssignment(
                packet=packet,
                link_delay=topology.fixed_link_delay(packet.source, packet.destination),
                impact=impact,
            )
        assert transmitter is not None and receiver is not None
        chunks = split_into_chunks(
            packet,
            transmitter,
            receiver,
            edge_delay=edge_delay,
            head_delay=topology.head_delay(transmitter),
            tail_delay=topology.tail_delay(receiver),
        )
        return EdgeAssignment(
            packet=packet,
            transmitter=transmitter,
            receiver=receiver,
            edge_delay=edge_delay,
            impact=impact,
            chunks=chunks,
        )

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        """Assign ``packet`` per Section III-B and return the assignment.

        Raises
        ------
        RoutingError
            If the packet has neither a candidate reconfigurable edge nor a
            fixed link.
        """
        memo = self.shared_memo
        if memo is not None and not self.record_decisions:
            fingerprint = pool.impact_fingerprint
            decision = memo.lookup(packet.packet_id, fingerprint)
            if decision is None:
                decision = self._decide(packet, topology, pool)
                memo.store(packet.packet_id, fingerprint, decision)
            elif memo.validate:
                expected = self._decide(packet, topology, pool)
                if expected != decision:
                    raise SimulationError(
                        f"shared-dispatch invariant violated for packet "
                        f"{packet.packet_id}: memoised decision {decision!r} != "
                        f"this lane's own {expected!r} (fingerprint collision "
                        "or index corruption)"
                    )
            return self._build_assignment(packet, topology, decision)

        if not self.record_decisions:
            return self._build_assignment(
                packet, topology, self._decide(packet, topology, pool)
            )

        # Recording path: materialise every candidate's breakdown for the log.
        impacts = self.evaluate_candidates(packet, topology, pool)
        best: Optional[EdgeImpact] = None
        for impact in impacts:
            if best is None or (impact.total, impact.edge) < (best.total, best.edge):
                best = impact

        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        fixed_latency: Optional[float] = None
        if has_fixed:
            fixed_latency = packet.weight * topology.fixed_link_delay(
                packet.source, packet.destination
            )

        if best is None and not has_fixed:
            raise RoutingError(
                f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                "has no reconfigurable edge and no fixed link"
            )

        use_fixed = False
        if has_fixed and (best is None or fixed_latency <= best.total):
            use_fixed = True

        if use_fixed:
            assert fixed_latency is not None
            decision: _Decision = (True, None, None, 0, fixed_latency)
        else:
            assert best is not None
            decision = (False, best.transmitter, best.receiver, best.edge_delay, best.total)
        assignment = self._build_assignment(packet, topology, decision)

        self.decision_log.append(
            {
                "packet_id": packet.packet_id,
                "now": now,
                "candidates": impacts,
                "fixed_latency": fixed_latency,
                "chosen_fixed": use_fixed,
                "impact": assignment.impact,
                "edge": None if use_fixed else assignment.edge,
            }
        )
        return assignment
