"""The worst-case-impact dispatcher of Section III-B.

Upon arrival of packet ``p`` the dispatcher evaluates, for every candidate
reconfigurable edge ``e = (t, r) ∈ E_p``, the *worst-case impact* of assigning
``p`` to ``e``:

.. math::

    Δ_p(e) = w_p · ( d(src,t) + (d(e)+1)/2 + d(r,dest) )
             + w_p · |H_p(e)| + d(e) · w(L_p(e))

where ``A_p(e)`` is the set of pending chunks (of earlier-arrived packets)
assigned to an edge sharing ``t`` or ``r``, ``H_p(e) ⊆ A_p(e)`` are the chunks
that may delay ``p``'s chunks (weight at least ``w_p/d(e)``; ties favour the
earlier arrival, i.e. the existing chunk) and ``L_p(e) = A_p(e) \\ H_p(e)`` are
the chunks ``p`` may delay.

The packet is assigned to the edge minimising ``Δ_p(e)`` unless a direct fixed
link exists whose weighted latency ``w_p · d_l(p)`` is no larger, in which
case the fixed link is used.  The chosen value also becomes the dual variable
``α_p`` used throughout the competitive analysis (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.interfaces import Dispatcher
from repro.core.packet import (
    Assignment,
    EdgeAssignment,
    FixedLinkAssignment,
    Packet,
    split_into_chunks,
)
from repro.core.queues import PendingChunkPool
from repro.exceptions import RoutingError
from repro.network.topology import TwoTierTopology

__all__ = ["ImpactDispatcher", "EdgeImpact", "compute_edge_impact"]


@dataclass(frozen=True)
class EdgeImpact:
    """Breakdown of the worst-case impact ``Δ_p(e)`` of one candidate edge.

    Attributes
    ----------
    transmitter, receiver:
        The candidate edge.
    edge_delay:
        ``d(e)``.
    self_latency:
        ``w_p · (d(src,t) + (d(e)+1)/2 + d(r,dest))`` — the weighted latency
        of ``p``'s own chunks when they are never blocked by other packets.
    blocked_by_term:
        ``w_p · |H_p(e)|`` — worst-case latency ``p`` suffers from heavier
        pending chunks.
    blocks_term:
        ``d(e) · w(L_p(e))`` — worst-case latency ``p`` inflicts on lighter
        pending chunks.
    num_heavier, num_lighter:
        ``|H_p(e)|`` and ``|L_p(e)|``.
    """

    transmitter: str
    receiver: str
    edge_delay: int
    self_latency: float
    blocked_by_term: float
    blocks_term: float
    num_heavier: int
    num_lighter: int

    @property
    def edge(self) -> Tuple[str, str]:
        """The candidate ``(transmitter, receiver)`` pair."""
        return (self.transmitter, self.receiver)

    @property
    def total(self) -> float:
        """The worst-case impact ``Δ_p(e)``."""
        return self.self_latency + self.blocked_by_term + self.blocks_term


def compute_edge_impact(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    pool: PendingChunkPool,
) -> EdgeImpact:
    """Compute ``Δ_p(e)`` for ``packet`` on edge ``(transmitter, receiver)``.

    The pending chunks currently in ``pool`` play the role of the paper's set
    ``B_p`` (chunks of packets that arrived before ``p`` and are still
    pending); chunks adjacent to the edge form ``A_p(e)``.
    """
    d_e = topology.edge_delay(transmitter, receiver)
    head = topology.head_delay(transmitter)
    tail = topology.tail_delay(receiver)
    chunk_weight = packet.weight / d_e

    num_heavier = 0
    lighter_weight = 0.0
    num_lighter = 0
    for chunk in pool.adjacent_chunks(transmitter, receiver):
        # Ties go to the already-pending chunk (it belongs to an earlier
        # packet), so equality counts towards H_p(e).
        if chunk.weight >= chunk_weight:
            num_heavier += 1
        else:
            num_lighter += 1
            lighter_weight += chunk.weight

    self_latency = packet.weight * (head + (d_e + 1) / 2.0 + tail)
    return EdgeImpact(
        transmitter=transmitter,
        receiver=receiver,
        edge_delay=d_e,
        self_latency=self_latency,
        blocked_by_term=packet.weight * num_heavier,
        blocks_term=d_e * lighter_weight,
        num_heavier=num_heavier,
        num_lighter=num_lighter,
    )


class ImpactDispatcher(Dispatcher):
    """The paper's greedy minimum-worst-case-impact dispatch rule."""

    name = "impact"

    def __init__(self, record_decisions: bool = False) -> None:
        #: When ``record_decisions`` is set, every dispatch stores the full
        #: per-edge impact breakdown for later inspection (used by the
        #: Figure 2 reproduction and by the analysis tests).
        self.record_decisions = record_decisions
        self.decision_log: List[Dict[str, object]] = []

    def reset(self) -> None:
        """Clear the decision log."""
        self.decision_log = []

    # ------------------------------------------------------------------ #
    def evaluate_candidates(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
    ) -> List[EdgeImpact]:
        """Return the impact breakdown of every candidate edge of ``packet``."""
        candidates = topology.candidate_edges(packet.source, packet.destination)
        return [
            compute_edge_impact(packet, t, r, topology, pool) for (t, r) in candidates
        ]

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        """Assign ``packet`` per Section III-B and return the assignment.

        Raises
        ------
        RoutingError
            If the packet has neither a candidate reconfigurable edge nor a
            fixed link.
        """
        impacts = self.evaluate_candidates(packet, topology, pool)
        best: Optional[EdgeImpact] = None
        for impact in impacts:
            if best is None or (impact.total, impact.edge) < (best.total, best.edge):
                best = impact

        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        fixed_latency: Optional[float] = None
        if has_fixed:
            fixed_latency = packet.weight * topology.fixed_link_delay(
                packet.source, packet.destination
            )

        if best is None and not has_fixed:
            raise RoutingError(
                f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                "has no reconfigurable edge and no fixed link"
            )

        use_fixed = False
        if has_fixed and (best is None or fixed_latency <= best.total):
            use_fixed = True

        assignment: Assignment
        if use_fixed:
            assert fixed_latency is not None
            assignment = FixedLinkAssignment(
                packet=packet,
                link_delay=topology.fixed_link_delay(packet.source, packet.destination),
                impact=fixed_latency,
            )
        else:
            assert best is not None
            chunks = split_into_chunks(
                packet,
                best.transmitter,
                best.receiver,
                edge_delay=best.edge_delay,
                head_delay=topology.head_delay(best.transmitter),
                tail_delay=topology.tail_delay(best.receiver),
            )
            assignment = EdgeAssignment(
                packet=packet,
                transmitter=best.transmitter,
                receiver=best.receiver,
                edge_delay=best.edge_delay,
                impact=best.total,
                chunks=chunks,
            )

        if self.record_decisions:
            self.decision_log.append(
                {
                    "packet_id": packet.packet_id,
                    "now": now,
                    "candidates": impacts,
                    "fixed_latency": fixed_latency,
                    "chosen_fixed": use_fixed,
                    "impact": assignment.impact,
                    "edge": None if use_fixed else assignment.edge,
                }
            )
        return assignment
