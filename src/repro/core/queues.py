"""Pending-chunk bookkeeping shared by dispatchers, schedulers and the engine.

The :class:`PendingChunkPool` indexes all dispatched-but-undelivered chunks

* by reconfigurable edge (the per-edge transmission queue),
* by transmitter and by receiver (the adjacency sets the dispatcher's
  ``A_p(e)`` computation and the stable-matching blocking relation need),

and offers priority-ordered iteration using the single chunk order defined in
:mod:`repro.utils.ordering` (decreasing weight, ties by earlier arrival).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.packet import Chunk
from repro.exceptions import SimulationError
from repro.utils.ordering import chunk_priority_key

__all__ = ["PendingChunkPool"]


class PendingChunkPool:
    """Container of pending (dispatched, not fully transmitted) chunks."""

    def __init__(self) -> None:
        self._by_edge: Dict[Tuple[str, str], List[Chunk]] = {}
        self._by_transmitter: Dict[str, Set[Chunk]] = {}
        self._by_receiver: Dict[str, Set[Chunk]] = {}
        self._all: Set[Chunk] = set()

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, chunk: Chunk) -> None:
        """Add a pending chunk to the pool."""
        if chunk in self._all:
            raise SimulationError(f"chunk {chunk!r} is already in the pool")
        if not chunk.pending:
            raise SimulationError(f"cannot add non-pending chunk {chunk!r}")
        self._all.add(chunk)
        self._by_edge.setdefault(chunk.edge, []).append(chunk)
        self._by_transmitter.setdefault(chunk.transmitter, set()).add(chunk)
        self._by_receiver.setdefault(chunk.receiver, set()).add(chunk)

    def add_all(self, chunks: Iterable[Chunk]) -> None:
        """Add every chunk in ``chunks`` to the pool."""
        for chunk in chunks:
            self.add(chunk)

    def remove(self, chunk: Chunk) -> None:
        """Remove a chunk (typically because it finished transmission)."""
        if chunk not in self._all:
            raise SimulationError(f"chunk {chunk!r} is not in the pool")
        self._all.discard(chunk)
        edge_list = self._by_edge.get(chunk.edge, [])
        if chunk in edge_list:
            edge_list.remove(chunk)
            if not edge_list:
                self._by_edge.pop(chunk.edge, None)
        tx_set = self._by_transmitter.get(chunk.transmitter)
        if tx_set is not None:
            tx_set.discard(chunk)
            if not tx_set:
                self._by_transmitter.pop(chunk.transmitter, None)
        rx_set = self._by_receiver.get(chunk.receiver)
        if rx_set is not None:
            rx_set.discard(chunk)
            if not rx_set:
                self._by_receiver.pop(chunk.receiver, None)

    def clear(self) -> None:
        """Remove every chunk from the pool."""
        self._by_edge.clear()
        self._by_transmitter.clear()
        self._by_receiver.clear()
        self._all.clear()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._all)

    def __contains__(self, chunk: Chunk) -> bool:
        return chunk in self._all

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._all)

    def is_empty(self) -> bool:
        """Whether the pool holds no pending chunks."""
        return not self._all

    def chunks_on_edge(self, transmitter: str, receiver: str) -> List[Chunk]:
        """Pending chunks assigned to the given edge, in priority order."""
        chunks = list(self._by_edge.get((transmitter, receiver), ()))
        chunks.sort(key=chunk_priority_key)
        return chunks

    def chunks_at_transmitter(self, transmitter: str) -> List[Chunk]:
        """Pending chunks assigned to any edge incident to ``transmitter``."""
        return sorted(self._by_transmitter.get(transmitter, ()), key=chunk_priority_key)

    def chunks_at_receiver(self, receiver: str) -> List[Chunk]:
        """Pending chunks assigned to any edge incident to ``receiver``."""
        return sorted(self._by_receiver.get(receiver, ()), key=chunk_priority_key)

    def adjacent_chunks(self, transmitter: str, receiver: str) -> List[Chunk]:
        """Pending chunks sharing the transmitter *or* the receiver of an edge.

        This is the paper's set ``A_p(e)`` (restricted to pending chunks, which
        is exactly what the dispatcher needs because it runs before the new
        packet's own chunks are added to the pool).
        """
        seen = self._by_transmitter.get(transmitter, set()) | self._by_receiver.get(
            receiver, set()
        )
        return sorted(seen, key=chunk_priority_key)

    def eligible_chunks(self, now: int) -> List[Chunk]:
        """All pending chunks whose ``eligible_time <= now``, in priority order."""
        chunks = [c for c in self._all if c.eligible_time <= now]
        chunks.sort(key=chunk_priority_key)
        return chunks

    def busy_transmitters(self) -> Set[str]:
        """Transmitters with at least one pending chunk."""
        return set(self._by_transmitter)

    def busy_receivers(self) -> Set[str]:
        """Receivers with at least one pending chunk."""
        return set(self._by_receiver)

    def total_weight(self) -> float:
        """Sum of weights of all pending chunks."""
        return sum(c.weight for c in self._all)

    def weight_at_transmitter(self, transmitter: str) -> float:
        """Total pending chunk weight at ``transmitter`` (the β_{t,τ} quantity restricted to pending chunks)."""
        return sum(c.weight for c in self._by_transmitter.get(transmitter, ()))

    def weight_at_receiver(self, receiver: str) -> float:
        """Total pending chunk weight at ``receiver``."""
        return sum(c.weight for c in self._by_receiver.get(receiver, ()))
