"""Pending-chunk bookkeeping shared by dispatchers, schedulers and the engine.

The :class:`PendingChunkPool` indexes all dispatched-but-undelivered chunks

* by reconfigurable edge (the per-edge transmission queue),
* by transmitter and by receiver (the adjacency sets the dispatcher's
  ``A_p(e)`` computation and the stable-matching blocking relation need),

and offers priority-ordered iteration using the single chunk order defined in
:mod:`repro.utils.ordering` (decreasing weight, ties by earlier arrival).

Every index is a list kept sorted by :func:`~repro.utils.ordering.chunk_priority_key`
via binary-search insertion.  The key is immutable for a chunk's lifetime
(weight, arrival, packet id, chunk index — the engine only mutates
``remaining_work``), so queries like :meth:`chunks_on_edge`,
:meth:`eligible_chunks` and :meth:`adjacent_chunks` return already-ordered
data instead of re-sorting the pool on every call — the per-slot hot path of
the simulation engine.

Eligibility partition
---------------------
Pending chunks are split into two sets: *eligible* chunks
(``eligible_time <= watermark``) live in priority-sorted iteration lists,
while *future* chunks (head-of-line delay not yet elapsed) wait in
time-bucketed activation queues keyed by their ``eligible_time``.  A
monotone watermark (:attr:`eligible_through`) advances with the queries, and
:meth:`advance_eligibility` promotes whole buckets as their activation time
is reached.  This turns :meth:`eligible_chunks` from a full-pool filter into
a straight read of the eligible list, and lets the engine's slot-skipping
fast path jump directly to :meth:`next_activation_time` when nothing is
currently eligible.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.impact_index import ImpactIndex
from repro.core.matching_index import MatchingIndex
from repro.core.packet import Chunk
from repro.exceptions import SimulationError
from repro.utils.ordering import chunk_fifo_key, chunk_priority_key

__all__ = ["PendingChunkPool"]


def _sorted_remove(chunks: List[Chunk], chunk: Chunk) -> None:
    """Remove ``chunk`` from a priority-sorted list (O(log n) search, O(n) tail shift)."""
    # The priority key is a total order (it ends in packet id / chunk
    # index), so the chunk sits exactly at its key's bisection point.
    del chunks[bisect_left(chunks, chunk_priority_key(chunk), key=chunk_priority_key)]


class PendingChunkPool:
    """Container of pending (dispatched, not fully transmitted) chunks.

    With ``impact_index=True`` the pool additionally maintains an
    :class:`~repro.core.impact_index.ImpactIndex` over its chunks, which the
    impact dispatcher uses to answer per-candidate adjacency statistics in
    O(log n) instead of scanning ``adjacent_chunks`` — the ``engine="indexed"``
    hot path.  The index mirrors pool membership exactly; it can also be
    switched on later with :meth:`enable_impact_index` (backfilling the
    current chunks), which dispatcher-level tests use.

    With ``matching_index=True`` the pool also maintains a
    :class:`~repro.core.matching_index.MatchingIndex` over its *eligible*
    chunks: every activation and removal is forwarded as a repair event, so
    the stable-matching scheduler can read the current greedy stable matching
    incrementally instead of recomputing it from scratch each slot.  Like the
    impact index it can be enabled later with :meth:`enable_matching_index`.
    """

    def __init__(self, *, impact_index: bool = False, matching_index: bool = False) -> None:
        self._by_edge: Dict[Tuple[str, str], List[Chunk]] = {}
        self._by_transmitter: Dict[str, List[Chunk]] = {}
        self._by_receiver: Dict[str, List[Chunk]] = {}
        self._all: Set[Chunk] = set()
        # Eligibility partition: chunks whose eligible_time has been reached
        # (relative to the monotone watermark) form the eligible set; later
        # chunks wait in per-activation-time buckets fronted by a min-heap of
        # activation times.  The priority- and FIFO-ordered views of the
        # eligible set are each built lazily on first use and maintained
        # incrementally afterwards, so only schedulers that actually iterate
        # in that order pay for the sorted insertions (the incremental
        # matching scheduler needs neither view).
        self._eligible_set: Set[Chunk] = set()
        self._eligible: Optional[List[Chunk]] = None
        self._eligible_fifo: Optional[List[Chunk]] = None
        self._future: Dict[int, List[Chunk]] = {}
        self._future_times: List[int] = []
        self._eligible_through = 0
        # Incrementally maintained O(1) counters: the number of pending
        # chunks and the total remaining chunk-units of work.  The engine
        # reports transmitted work through :meth:`debit_work`.
        self._size = 0
        self._pending_work = 0.0
        self._impact_index: Optional[ImpactIndex] = ImpactIndex() if impact_index else None
        self._matching_index: Optional[MatchingIndex] = (
            MatchingIndex() if matching_index else None
        )
        # Commutative multiset hash over (transmitter, receiver, weight) —
        # the only chunk attributes the impact rule reads — maintained on
        # every add/remove.  Two pools with equal fingerprints hold (up to
        # hash collision) impact-equivalent content, which is what lets
        # ``run_multi`` share dispatch decisions across policy lanes.
        self._impact_fingerprint = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, chunk: Chunk) -> None:
        """Add a pending chunk to the pool."""
        if chunk in self._all:
            raise SimulationError(f"chunk {chunk!r} is already in the pool")
        if not chunk.pending:
            raise SimulationError(f"cannot add non-pending chunk {chunk!r}")
        self._all.add(chunk)
        self._size += 1
        self._pending_work += chunk.remaining_work
        self._impact_fingerprint += hash((chunk.transmitter, chunk.receiver, chunk.weight))
        if self._impact_index is not None:
            self._impact_index.add(chunk)
        if chunk.eligible_time <= self._eligible_through:
            self._activate(chunk)
        else:
            bucket = self._future.get(chunk.eligible_time)
            if bucket is None:
                self._future[chunk.eligible_time] = [chunk]
                heappush(self._future_times, chunk.eligible_time)
            else:
                bucket.append(chunk)
        insort(self._by_edge.setdefault(chunk.edge, []), chunk, key=chunk_priority_key)
        insort(
            self._by_transmitter.setdefault(chunk.transmitter, []),
            chunk,
            key=chunk_priority_key,
        )
        insort(
            self._by_receiver.setdefault(chunk.receiver, []), chunk, key=chunk_priority_key
        )

    def add_all(self, chunks: Iterable[Chunk]) -> None:
        """Add every chunk in ``chunks`` to the pool."""
        for chunk in chunks:
            self.add(chunk)

    def remove(self, chunk: Chunk) -> None:
        """Remove a chunk (typically because it finished transmission)."""
        if chunk not in self._all:
            raise SimulationError(f"chunk {chunk!r} is not in the pool")
        self._all.discard(chunk)
        self._size -= 1
        self._pending_work -= chunk.remaining_work
        if self._size == 0:
            self._pending_work = 0.0  # keep float drift from accumulating across bursts
        self._impact_fingerprint -= hash((chunk.transmitter, chunk.receiver, chunk.weight))
        if self._impact_index is not None:
            self._impact_index.discard(chunk)
        if chunk.eligible_time <= self._eligible_through:
            self._eligible_set.discard(chunk)
            if self._eligible is not None:
                _sorted_remove(self._eligible, chunk)
            if self._eligible_fifo is not None:
                fifo = self._eligible_fifo
                del fifo[bisect_left(fifo, chunk_fifo_key(chunk), key=chunk_fifo_key)]
            if self._matching_index is not None:
                self._matching_index.discard(chunk)
        else:
            bucket = self._future[chunk.eligible_time]
            bucket.remove(chunk)
            if not bucket:
                # The activation time stays in the heap; stale entries are
                # skipped lazily when the heap front is inspected.
                del self._future[chunk.eligible_time]
        edge_list = self._by_edge[chunk.edge]
        _sorted_remove(edge_list, chunk)
        if not edge_list:
            del self._by_edge[chunk.edge]
        tx_list = self._by_transmitter[chunk.transmitter]
        _sorted_remove(tx_list, chunk)
        if not tx_list:
            del self._by_transmitter[chunk.transmitter]
        rx_list = self._by_receiver[chunk.receiver]
        _sorted_remove(rx_list, chunk)
        if not rx_list:
            del self._by_receiver[chunk.receiver]

    def clear(self) -> None:
        """Remove every chunk from the pool."""
        self._by_edge.clear()
        self._by_transmitter.clear()
        self._by_receiver.clear()
        self._all.clear()
        self._eligible_set.clear()
        if self._eligible is not None:
            self._eligible.clear()
        if self._eligible_fifo is not None:
            self._eligible_fifo.clear()
        self._future.clear()
        self._future_times.clear()
        self._eligible_through = 0
        self._size = 0
        self._pending_work = 0.0
        self._impact_fingerprint = 0
        if self._impact_index is not None:
            self._impact_index.clear()
        if self._matching_index is not None:
            self._matching_index.clear()

    def debit_work(self, amount: float) -> None:
        """Record that ``amount`` chunk-units of pending work were transmitted.

        Chunk ``remaining_work`` is mutated by the engine, outside the pool's
        view; this hook keeps :meth:`total_pending_work` an O(1) counter
        instead of a scan over every index.
        """
        self._pending_work -= amount

    def enable_impact_index(self) -> ImpactIndex:
        """Switch the incremental impact index on, backfilling current chunks."""
        if self._impact_index is None:
            index = ImpactIndex()
            for chunk in self._all:
                index.add(chunk)
            self._impact_index = index
        return self._impact_index

    def enable_matching_index(self) -> MatchingIndex:
        """Switch the incremental matching index on, backfilling eligible chunks."""
        if self._matching_index is None:
            index = MatchingIndex()
            for chunk in sorted(self._eligible_set, key=chunk_priority_key):
                index.activate(chunk)
            self._matching_index = index
        return self._matching_index

    # ------------------------------------------------------------------ #
    # eligibility partition
    # ------------------------------------------------------------------ #
    def _activate(self, chunk: Chunk) -> None:
        """Move a chunk into the eligible partition's iteration structures."""
        self._eligible_set.add(chunk)
        if self._eligible is not None:
            insort(self._eligible, chunk, key=chunk_priority_key)
        if self._eligible_fifo is not None:
            insort(self._eligible_fifo, chunk, key=chunk_fifo_key)
        if self._matching_index is not None:
            self._matching_index.activate(chunk)

    def _sorted_eligible(self) -> List[Chunk]:
        """The priority-ordered view of the eligible set, built on first use."""
        if self._eligible is None:
            self._eligible = sorted(self._eligible_set, key=chunk_priority_key)
        return self._eligible

    def advance_eligibility(self, now: int) -> None:
        """Advance the watermark to ``now``, promoting every due activation bucket."""
        if now <= self._eligible_through:
            return
        self._eligible_through = now
        times = self._future_times
        while times and times[0] <= now:
            due = heappop(times)
            bucket = self._future.pop(due, None)
            if bucket:
                for chunk in bucket:
                    self._activate(chunk)

    @property
    def eligible_through(self) -> int:
        """The watermark slot up to which activations have been applied.

        Queries at ``now >= eligible_through`` (the engine's monotone use)
        read the eligible partition directly; earlier ``now`` values fall
        back to filtering it, preserving exact semantics for out-of-order
        queries in tests.
        """
        return self._eligible_through

    def next_activation_time(self) -> Optional[int]:
        """The earliest ``eligible_time`` of any future (not yet eligible) chunk."""
        times = self._future_times
        while times and times[0] not in self._future:
            heappop(times)  # stale entry: its bucket emptied before activating
        return times[0] if times else None

    def has_eligible(self, now: int) -> bool:
        """Whether any pending chunk is eligible at ``now`` (advances the watermark)."""
        self.advance_eligibility(now)
        if now >= self._eligible_through:
            return bool(self._eligible_set)
        return any(c.eligible_time <= now for c in self._eligible_set)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def impact_index(self) -> Optional[ImpactIndex]:
        """The maintained impact index, or ``None`` when running reference-style."""
        return self._impact_index

    @property
    def matching_index(self) -> Optional[MatchingIndex]:
        """The maintained matching index, or ``None`` when running reference-style."""
        return self._matching_index

    @property
    def impact_fingerprint(self) -> int:
        """Commutative hash of the pool's ``(transmitter, receiver, weight)`` multiset.

        Equal multisets always produce equal fingerprints; distinct multisets
        collide only with hash-collision probability.  ``run_multi`` keys its
        shared-dispatch memo on this value (a debug flag re-verifies hits).
        """
        return self._impact_fingerprint

    def __len__(self) -> int:
        return self._size

    def total_pending_work(self) -> float:
        """Total remaining chunk-units of work across all pending chunks.

        Maintained incrementally (O(1)); equals
        ``sum(c.remaining_work for c in pool)`` up to float rounding, and is
        reset exactly to zero whenever the pool empties.
        """
        return max(self._pending_work, 0.0)

    def occupancy(self) -> Dict[str, float]:
        """JSON-ready occupancy gauges: chunk counts and pending work.

        Reads maintained state only (the future count walks the activation
        buckets, O(distinct activation times)), so the snapshot is safe to
        take from instrumentation at any point of a run.
        """
        return {
            "pending_chunks": self._size,
            "eligible_chunks": len(self._eligible_set),
            "future_chunks": sum(len(bucket) for bucket in self._future.values()),
            "pending_work": self.total_pending_work(),
        }

    def __contains__(self, chunk: Chunk) -> bool:
        return chunk in self._all

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._all)

    def is_empty(self) -> bool:
        """Whether the pool holds no pending chunks."""
        return not self._all

    def chunks_on_edge(self, transmitter: str, receiver: str) -> List[Chunk]:
        """Pending chunks assigned to the given edge, in priority order."""
        return list(self._by_edge.get((transmitter, receiver), ()))

    def edge_queue(self, transmitter: str, receiver: str) -> Sequence[Chunk]:
        """Zero-copy view of one edge's pending chunks, in priority order.

        Unlike :meth:`chunks_on_edge` this returns the pool's internal list
        directly: callers must treat it as read-only and must not hold it
        across any pool mutation.  The vectorised transmission backend uses
        it on every matched edge per slot, where the defensive copy would
        dominate the per-slot cost.
        """
        return self._by_edge.get((transmitter, receiver), ())

    def chunks_at_transmitter(self, transmitter: str) -> List[Chunk]:
        """Pending chunks assigned to any edge incident to ``transmitter``."""
        return list(self._by_transmitter.get(transmitter, ()))

    def chunks_at_receiver(self, receiver: str) -> List[Chunk]:
        """Pending chunks assigned to any edge incident to ``receiver``."""
        return list(self._by_receiver.get(receiver, ()))

    def adjacent_chunks(self, transmitter: str, receiver: str) -> List[Chunk]:
        """Pending chunks sharing the transmitter *or* the receiver of an edge.

        This is the paper's set ``A_p(e)`` (restricted to pending chunks, which
        is exactly what the dispatcher needs because it runs before the new
        packet's own chunks are added to the pool).
        """
        # Merge the two sorted incidence lists.  The priority key is a total
        # order (it ends in packet id / chunk index), so equal keys can only
        # mean the *same* chunk — one pending on edge ``(transmitter,
        # receiver)`` itself, present in both lists — and is emitted once.
        tx = self._by_transmitter.get(transmitter, [])
        rx = self._by_receiver.get(receiver, [])
        if not tx:
            return list(rx)
        if not rx:
            return list(tx)
        merged: List[Chunk] = []
        i = j = 0
        while i < len(tx) and j < len(rx):
            key_t, key_r = chunk_priority_key(tx[i]), chunk_priority_key(rx[j])
            if key_t < key_r:
                merged.append(tx[i])
                i += 1
            elif key_r < key_t:
                merged.append(rx[j])
                j += 1
            else:
                merged.append(tx[i])
                i += 1
                j += 1
        merged.extend(tx[i:])
        merged.extend(rx[j:])
        return merged

    def eligible_chunks(self, now: int) -> List[Chunk]:
        """All pending chunks whose ``eligible_time <= now``, in priority order."""
        if now >= self._eligible_through:
            self.advance_eligibility(now)
            return list(self._sorted_eligible())
        return [c for c in self._sorted_eligible() if c.eligible_time <= now]

    def iter_eligible(self, now: int) -> Iterator[Chunk]:
        """Iterate eligible chunks in priority order without materialising a list.

        The pool must not be mutated while the iterator is live (the per-slot
        schedulers read it to completion before transmitting anything).
        """
        if now >= self._eligible_through:
            self.advance_eligibility(now)
            return iter(self._sorted_eligible())
        return (c for c in self._sorted_eligible() if c.eligible_time <= now)

    def iter_eligible_fifo(self, now: int) -> Iterator[Chunk]:
        """Iterate eligible chunks in FIFO (arrival) order without re-sorting.

        The FIFO-ordered list is built on first use and maintained
        incrementally afterwards, so only pools actually serving a
        FIFO-ordered scheduler pay for the extra index.  The same
        no-mutation-while-iterating rule as :meth:`iter_eligible` applies.
        """
        if self._eligible_fifo is None:
            self._eligible_fifo = sorted(self._eligible_set, key=chunk_fifo_key)
        if now >= self._eligible_through:
            self.advance_eligibility(now)
            return iter(self._eligible_fifo)
        return (c for c in self._eligible_fifo if c.eligible_time <= now)

    def busy_transmitters(self) -> Set[str]:
        """Transmitters with at least one pending chunk."""
        return set(self._by_transmitter)

    def busy_receivers(self) -> Set[str]:
        """Receivers with at least one pending chunk."""
        return set(self._by_receiver)

    def total_weight(self) -> float:
        """Sum of weights of all pending chunks."""
        return sum(c.weight for c in self._all)

    def weight_at_transmitter(self, transmitter: str) -> float:
        """Total pending chunk weight at ``transmitter`` (the β_{t,τ} quantity restricted to pending chunks)."""
        return sum(c.weight for c in self._by_transmitter.get(transmitter, ()))

    def weight_at_receiver(self, receiver: str) -> float:
        """Total pending chunk weight at ``receiver``."""
        return sum(c.weight for c in self._by_receiver.get(receiver, ()))
