"""The paper's primary contribution: online two-tier link scheduling.

This subpackage contains the data model (packets, chunks, assignments), the
policy interfaces, the worst-case-impact dispatcher, the greedy
stable-matching scheduler, and the combined algorithm ALG.
"""

from repro.core.algorithm import (
    OpportunisticLinkScheduler,
    make_paper_policy,
    theoretical_competitive_ratio,
)
from repro.core.dispatcher import (
    EdgeImpact,
    ImpactDispatcher,
    SharedDispatchMemo,
    compute_edge_impact,
    compute_edge_impact_auto,
    compute_edge_impact_indexed,
)
from repro.core.impact_index import ImpactIndex
from repro.core.interfaces import Dispatcher, Policy, Scheduler
from repro.core.matching_index import MatchingIndex
from repro.core.packet import (
    Assignment,
    Chunk,
    EdgeAssignment,
    FixedLinkAssignment,
    Packet,
    split_into_chunks,
)
from repro.core.queues import PendingChunkPool
from repro.core.scheduler import OrderedGreedyScheduler, StableMatchingScheduler
from repro.core.stable_matching import (
    blocking_chunk,
    greedy_stable_matching,
    greedy_stable_matching_on_edges,
    is_chunk_matching,
    is_stable_edge_matching,
    is_stable_matching,
)

__all__ = [
    "Packet",
    "Chunk",
    "Assignment",
    "EdgeAssignment",
    "FixedLinkAssignment",
    "split_into_chunks",
    "PendingChunkPool",
    "Dispatcher",
    "Scheduler",
    "Policy",
    "ImpactDispatcher",
    "ImpactIndex",
    "MatchingIndex",
    "SharedDispatchMemo",
    "EdgeImpact",
    "compute_edge_impact",
    "compute_edge_impact_auto",
    "compute_edge_impact_indexed",
    "StableMatchingScheduler",
    "OrderedGreedyScheduler",
    "OpportunisticLinkScheduler",
    "make_paper_policy",
    "theoretical_competitive_ratio",
    "greedy_stable_matching",
    "greedy_stable_matching_on_edges",
    "is_stable_matching",
    "is_stable_edge_matching",
    "is_chunk_matching",
    "blocking_chunk",
]
