"""Declarative scenario matrix: registry, specs and the multi-policy cell runner.

See :mod:`repro.scenarios.spec` for the data model (``TopologySpec`` ×
``WorkloadSpec`` × policies × seeds expanding into experiment-runner tasks)
and :mod:`repro.scenarios.library` for the named scenarios and grids.
"""

from repro.scenarios.library import (
    GRIDS,
    get_scenario,
    grid_matrix,
    grid_names,
    list_scenarios,
    register_scenario,
    scenario_matrix,
    scenario_names,
)
from repro.scenarios.spec import (
    Scenario,
    ScenarioMatrix,
    TopologySpec,
    WorkloadSpec,
    resolve_policies,
    resolve_weight_sampler,
)

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "TopologySpec",
    "WorkloadSpec",
    "resolve_policies",
    "resolve_weight_sampler",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "scenario_matrix",
    "grid_matrix",
    "grid_names",
    "GRIDS",
]
