"""The scenario registry: named scenarios and named grids.

Scenarios fall into three families:

* **paper** — the topology × workload combinations the paper's experiment
  suite (E7–E10) evaluates: the six standard traffic patterns on a
  ProjecToR fabric, the single-tier crossbar comparison point and a hybrid
  fabric with fixed links;
* **adversarial** — stress patterns derived from the charging argument
  (see :mod:`repro.workloads.adversarial`): priority-inversion bursts,
  laser/photodetector contention hotspots and heavy-tailed incast;
* **deterministic** — the worked examples (Figures 1 and 2), whose packets
  and topologies carry no randomness at all, anchoring the golden tests.

Grids are named scenario subsets: ``smoke`` (seconds, runs in CI on every
push), ``paper``, ``adversarial``, ``speed`` (the same cells replayed at
speeds 1.0/1.5/2.5 via a shared ``seed_key``), ``faulted`` (the same cells
replayed under deterministic hardware-fault schedules) and ``full``.  Use
:func:`register_scenario` to add project-specific scenarios; everything
registered shows up in ``repro scenarios list`` and the ``full`` grid
automatically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import ScenarioError
from repro.scenarios.spec import Scenario, ScenarioMatrix, TopologySpec, WorkloadSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "scenario_matrix",
    "grid_matrix",
    "grid_names",
    "GRIDS",
]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (and return it, decorator-style)."""
    if scenario.name in _REGISTRY and not replace:
        raise ScenarioError(
            f"scenario {scenario.name!r} is already registered; "
            "pass replace=True to overwrite"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up one registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def list_scenarios(tag: Optional[str] = None) -> List[Scenario]:
    """All registered scenarios (optionally filtered by tag), in registration order."""
    scenarios = list(_REGISTRY.values())
    if tag is not None:
        scenarios = [s for s in scenarios if tag in s.tags]
    return scenarios


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """Names of all registered scenarios (optionally filtered by tag)."""
    return [s.name for s in list_scenarios(tag)]


def scenario_matrix(names: Iterable[str], name: str = "custom") -> ScenarioMatrix:
    """Build a matrix from scenario names (order preserved)."""
    return ScenarioMatrix(name=name, scenarios=tuple(get_scenario(n) for n in names))


# ---------------------------------------------------------------------- #
# the scenario library
# ---------------------------------------------------------------------- #
#: Policy set raced on the full-size scenarios (ALG plus the E7 baselines).
_RACE = ("alg", "fifo", "maxweight", "islip", "shortest-path")
#: Small, fast policy pair for the smoke/deterministic scenarios.
_PAIR = ("alg", "fifo")

_PROJECTOR = TopologySpec("projector", {"num_racks": 6, "lasers_per_rack": 2,
                                        "photodetectors_per_rack": 2})

register_scenario(Scenario(
    name="figure1",
    description="Figure 1 worked example: 5 packets, hybrid fixed link (deterministic)",
    topology=TopologySpec("figure1"),
    workload=WorkloadSpec("figure1-packets"),
    policies=_PAIR,
    tags=("paper", "deterministic", "smoke", "tiny"),
))

register_scenario(Scenario(
    name="figure2",
    description="Figure 2 worked example: the Π packet set (deterministic)",
    topology=TopologySpec("figure2"),
    workload=WorkloadSpec("figure2-packets"),
    policies=_PAIR,
    tags=("paper", "deterministic", "tiny"),
))

register_scenario(Scenario(
    name="uniform-projector",
    description="Uniform random pairs on a 6-rack ProjecToR fabric",
    topology=_PROJECTOR,
    workload=WorkloadSpec("uniform", {"num_packets": 120, "arrival_rate": 2.0},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="zipf-projector",
    description="Zipf-skewed pair popularity with Pareto weights",
    topology=_PROJECTOR,
    workload=WorkloadSpec("zipf", {"num_packets": 120, "exponent": 1.2,
                                   "arrival_rate": 2.0},
                          weights=("pareto", 1.5)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="elephant-mice-projector",
    description="Few heavy elephant pairs over a mice background",
    topology=_PROJECTOR,
    workload=WorkloadSpec("elephant-mice", {"num_packets": 120, "arrival_rate": 2.0}),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="hotspot-projector",
    description="Two destination hotspots absorbing 60% of traffic",
    topology=_PROJECTOR,
    workload=WorkloadSpec("hotspot", {"num_packets": 120, "num_hotspots": 2,
                                      "hotspot_fraction": 0.6, "arrival_rate": 2.0},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="bursty-projector",
    description="On/off microbursts over uniformly random pairs",
    topology=_PROJECTOR,
    workload=WorkloadSpec("bursty", {"num_packets": 120, "on_rate": 4.0},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="incast-projector",
    description="One-shot incast: 5 senders converge on one destination",
    topology=_PROJECTOR,
    workload=WorkloadSpec("incast", {"num_senders": 5, "packets_per_sender": 6},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="crossbar-uniform",
    description="Classic 8-port single-tier crossbar (Section V comparison point)",
    topology=TopologySpec("crossbar", {"num_ports": 8}),
    workload=WorkloadSpec("uniform", {"num_packets": 120, "arrival_rate": 4.0},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper",),
))

register_scenario(Scenario(
    name="hybrid-zipf",
    description="ProjecToR fabric plus delay-4 fixed links, Zipf traffic (E9 regime)",
    topology=TopologySpec("projector", {"num_racks": 6, "lasers_per_rack": 2,
                                        "photodetectors_per_rack": 2},
                          fixed_link_delay=4),
    workload=WorkloadSpec("zipf", {"num_packets": 120, "exponent": 1.1,
                                   "arrival_rate": 2.0},
                          weights=("uniform", 1, 10)),
    policies=_RACE,
    tags=("paper", "hybrid"),
))

register_scenario(Scenario(
    name="tiny-random",
    description="Tiny random hybrid fabric, 24 packets (fast CI cell)",
    topology=TopologySpec("random-bipartite",
                          {"num_sources": 3, "num_destinations": 3,
                           "transmitters_per_source": 2,
                           "receivers_per_destination": 2,
                           "edge_probability": 0.6, "delay_choices": (1, 2)},
                          fixed_link_delay=6),
    workload=WorkloadSpec("uniform", {"num_packets": 24, "arrival_rate": 1.5},
                          weights=("uniform", 1, 5)),
    policies=_PAIR + ("islip",),
    seeds=(0, 1),
    tags=("smoke", "tiny"),
))

# -------------------------- adversarial family ------------------------- #
register_scenario(Scenario(
    name="priority-inversion-burst",
    description="Light packets seize edges one slot before heavy bursts (charging stressor)",
    topology=_PROJECTOR,
    workload=WorkloadSpec("priority-inversion",
                          {"num_bursts": 10, "light_per_burst": 6,
                           "heavy_per_burst": 3, "burst_gap": 8}),
    policies=_RACE,
    tags=("adversarial", "smoke"),
))

register_scenario(Scenario(
    name="laser-hotspot",
    description="90% of traffic funnels through one rack's two lasers",
    topology=_PROJECTOR,
    workload=WorkloadSpec("contention-hotspot",
                          {"num_packets": 120, "side": "transmitter",
                           "hot_fraction": 0.9, "arrival_rate": 3.0},
                          weights=("pareto", 1.5)),
    policies=_RACE,
    tags=("adversarial",),
))

register_scenario(Scenario(
    name="photodetector-hotspot",
    description="90% of traffic converges on one rack's two photodetectors",
    topology=_PROJECTOR,
    workload=WorkloadSpec("contention-hotspot",
                          {"num_packets": 120, "side": "receiver",
                           "hot_fraction": 0.9, "arrival_rate": 3.0},
                          weights=("pareto", 1.5)),
    policies=_RACE,
    tags=("adversarial",),
))

register_scenario(Scenario(
    name="heavy-tailed-incast",
    description="Repeated incast waves with Pareto(1.2) weights",
    topology=_PROJECTOR,
    workload=WorkloadSpec("heavy-tailed-incast",
                          {"num_waves": 8, "senders_per_wave": 4,
                           "packets_per_sender": 2, "wave_gap": 6,
                           "pareto_exponent": 1.2}),
    policies=_RACE,
    tags=("adversarial",),
))


# ------------------------- speed-augmentation grid ---------------------- #
# Theorem 1 proves ALG (2+ε)-speed O(1/ε)-competitive; the speed grid
# replays the *same* cells at speeds 1.0 / 1.5 / 2.5 (2+ε with ε = 0.5).
# Variants share the base scenario's ``seed_key``, so topology, workload and
# policy seeds are identical across the grid and only the engine speed
# differs — the clean empirical read on the augmentation knob.
_SPEED_BASES = ("tiny-random", "priority-inversion-burst")
_SPEED_VALUES = (1.5, 2.5)


def _speed_variant_name(base: str, speed: float) -> str:
    return f"{base}@s{speed}"


for _base_name in _SPEED_BASES:
    _base = get_scenario(_base_name)
    for _speed in _SPEED_VALUES:
        register_scenario(dataclasses.replace(
            _base,
            name=_speed_variant_name(_base_name, _speed),
            description=f"{_base.description} — engine speed {_speed}",
            speed=_speed,
            tags=tuple(t for t in _base.tags if t != "smoke") + ("speed",),
            seed_key=_base_name,
        ))


# ----------------------------- faulted tier ----------------------------- #
# Robustness counterpart of the speed grid: the *same* cells (shared
# ``seed_key``) replayed with a deterministic per-cell fault schedule
# (failing lasers/photodetectors/edges plus degraded-rate events, generated
# by :func:`repro.faults.seeded_fault_schedule` inside the worker task).
# Only hybrid bases are used — their uniform fixed links guarantee every
# packet stays routable even if a whole rack's optics are dark, so the tier
# measures graceful degradation rather than hard routing failure.
_FAULTED_BASES = ("tiny-random", "hybrid-zipf")


def _faulted_variant_name(base: str) -> str:
    return f"{base}@faulted"


for _base_name in _FAULTED_BASES:
    _base = get_scenario(_base_name)
    register_scenario(dataclasses.replace(
        _base,
        name=_faulted_variant_name(_base_name),
        description=f"{_base.description} — with injected hardware faults",
        fault_seed=0,
        on_fail="requeue",
        tags=tuple(t for t in _base.tags if t != "smoke") + ("faulted",),
        seed_key=_base_name,
    ))


# ---------------------------------------------------------------------- #
# grids
# ---------------------------------------------------------------------- #
GRIDS: Dict[str, Sequence[str]] = {
    "smoke": ("figure1", "tiny-random", "priority-inversion-burst"),
    "paper": ("figure1", "figure2", "uniform-projector", "zipf-projector",
              "elephant-mice-projector", "hotspot-projector", "bursty-projector",
              "incast-projector", "crossbar-uniform", "hybrid-zipf"),
    "adversarial": ("priority-inversion-burst", "laser-hotspot",
                    "photodetector-hotspot", "heavy-tailed-incast"),
    "speed": tuple(
        name
        for base in _SPEED_BASES
        for name in (base, *(_speed_variant_name(base, s) for s in _SPEED_VALUES))
    ),
    # Only the @faulted variants: fault rows carry extra fields
    # (num_fault_events, on_fail), so mixing them with their fault-free
    # bases would break uniform-field row tables; compare against the base
    # scenarios through the ``smoke``/``paper`` grids instead.
    "faulted": tuple(_faulted_variant_name(base) for base in _FAULTED_BASES),
}


def grid_names() -> List[str]:
    """Names of all defined grids (``full`` is implicit: every scenario)."""
    return sorted(GRIDS) + ["full"]


def grid_matrix(grid: str) -> ScenarioMatrix:
    """The :class:`ScenarioMatrix` of a named grid (``full`` = every scenario)."""
    if grid == "full":
        return ScenarioMatrix(name="full", scenarios=tuple(list_scenarios()))
    if grid not in GRIDS:
        raise ScenarioError(f"unknown grid {grid!r}; choose from {grid_names()}")
    return scenario_matrix(GRIDS[grid], name=grid)
