"""Declarative scenario specifications and the scenario matrix.

A *scenario* names one reproducible experiment cell family: a topology
recipe, a workload recipe, the policies to race on it and the seeds to
repeat it with.  Everything is plain data — string kinds plus primitive
parameters — so scenarios can be registered declaratively, listed from the
CLI, fingerprinted for golden tests and pickled verbatim into
:class:`~repro.experiments.runner.ExperimentRunner` worker processes.

The expansion chain is::

    Scenario ──(seeds)──▶ cells ──ScenarioMatrix.to_experiment_spec()──▶
        ExperimentSpec ──ExperimentRunner──▶ one row per (cell, policy)

Each cell builds its topology and workload from seeds derived *only* from
the scenario name and the cell seed, so a scenario's rows are identical no
matter which matrix (or grid, or jobs count) it runs in.  In the default
``mode="shared"`` a cell evaluates all of its policies through
:meth:`~repro.simulation.engine.SimulationEngine.run_multi` — one workload
generation feeding every policy — while ``mode="per-policy"`` replays the
historical architecture (one task per (cell, policy), each regenerating the
instance) and produces bit-identical rows; benchmark E13 races the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.policies import all_policies
from repro.core.interfaces import Policy
from repro.core.packet import Packet
from repro.exceptions import ScenarioError, TopologyError
from repro.experiments.runner import ExperimentSpec, ExperimentTask, run_experiment
from repro.faults import ON_FAIL_MODES, FaultSchedule, seeded_fault_schedule
from repro.network.builders import (
    add_uniform_fixed_links,
    figure1_topology,
    figure2_topology,
    projector_fabric,
    random_bipartite,
    single_tier_crossbar,
)
from repro.network.topology import TwoTierTopology
from repro.simulation.engine import ENGINE_MODES, EngineConfig, SimulationEngine
from repro.simulation.results import SimulationResult
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.adversarial import (
    iter_contention_hotspot_workload,
    iter_heavy_tailed_incast_workload,
    iter_priority_inversion_workload,
)
from repro.workloads.bursty import iter_bursty_workload, iter_incast_workload
from repro.workloads.paper_figures import iter_figure1_packets, iter_figure2_packets_pi
from repro.workloads.skewed import iter_elephant_mice_workload, iter_zipf_workload
from repro.workloads.synthetic import (
    iter_all_to_all_workload,
    iter_hotspot_workload,
    iter_permutation_workload,
    iter_uniform_random_workload,
)
from repro.workloads.trace_io import iter_packet_trace, iter_packet_trace_jsonl
from repro.workloads.weights import (
    WeightSampler,
    bimodal_weights,
    constant_weights,
    pareto_weights,
    uniform_weights,
)

__all__ = [
    "TopologySpec",
    "WorkloadSpec",
    "Scenario",
    "ScenarioMatrix",
    "resolve_weight_sampler",
    "resolve_policies",
]

SCENARIO_MODES = ("shared", "per-policy")


# ---------------------------------------------------------------------- #
# weight-sampler specs
# ---------------------------------------------------------------------- #
_WEIGHT_KINDS: Dict[str, Callable[..., WeightSampler]] = {
    "constant": constant_weights,
    "uniform": uniform_weights,
    "pareto": pareto_weights,
    "bimodal": bimodal_weights,
}


def resolve_weight_sampler(spec: Optional[Sequence[Any]]) -> Optional[WeightSampler]:
    """Turn a declarative weight spec into a sampler callable.

    ``spec`` is ``None`` (generator default) or a tuple whose head names the
    sampler family and whose tail holds its positional parameters, e.g.
    ``("uniform", 1, 10)`` or ``("pareto", 1.5)``.  Samplers are closures and
    hence unpicklable, which is why scenarios carry this data form instead.
    """
    if spec is None:
        return None
    if not spec or spec[0] not in _WEIGHT_KINDS:
        raise ScenarioError(
            f"unknown weight spec {tuple(spec)!r}; expected head in "
            f"{sorted(_WEIGHT_KINDS)}"
        )
    return _WEIGHT_KINDS[spec[0]](*spec[1:])


# ---------------------------------------------------------------------- #
# topology specs
# ---------------------------------------------------------------------- #
def _cross_rack(source: str, destination: str) -> bool:
    """Fixed links only between distinct racks (module-level for pickling)."""
    return source.split(":")[0] != destination.split(":")[0]


#: kind -> (builder, accepts a ``seed`` keyword)
_TOPOLOGY_KINDS: Dict[str, Tuple[Callable[..., TwoTierTopology], bool]] = {
    "projector": (projector_fabric, True),
    "random-bipartite": (random_bipartite, True),
    "crossbar": (single_tier_crossbar, False),
    "figure1": (figure1_topology, False),
    "figure2": (figure2_topology, False),
}


@dataclass(frozen=True)
class TopologySpec:
    """Declarative recipe for a topology.

    Attributes
    ----------
    kind:
        One of ``projector``, ``random-bipartite``, ``crossbar``,
        ``figure1``, ``figure2``.
    params:
        Keyword arguments for the corresponding builder in
        :mod:`repro.network.builders` (primitives only).
    fixed_link_delay:
        When set, uniform fixed links of this delay are added between every
        cross-rack (source, destination) pair, turning the fabric into a
        hybrid one.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    fixed_link_delay: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _TOPOLOGY_KINDS:
            raise ScenarioError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{sorted(_TOPOLOGY_KINDS)}"
            )

    def build(self, seed: Optional[int] = None) -> TwoTierTopology:
        """Materialise the topology (deterministically for a fixed seed)."""
        builder, seeded = _TOPOLOGY_KINDS[self.kind]
        kwargs = dict(self.params)
        if seeded:
            kwargs.setdefault("seed", seed)
        topology = builder(**kwargs)
        if self.fixed_link_delay is not None:
            topology = add_uniform_fixed_links(
                topology, delay=self.fixed_link_delay, pair_filter=_cross_rack
            )
        return topology


# ---------------------------------------------------------------------- #
# workload specs
# ---------------------------------------------------------------------- #
#: kind -> (iter builder, accepts a ``weight_sampler`` keyword)
_WORKLOAD_KINDS: Dict[str, Tuple[Callable[..., Iterator[Packet]], bool]] = {
    "uniform": (iter_uniform_random_workload, True),
    "permutation": (iter_permutation_workload, True),
    "all-to-all": (iter_all_to_all_workload, True),
    "hotspot": (iter_hotspot_workload, True),
    "zipf": (iter_zipf_workload, True),
    "elephant-mice": (iter_elephant_mice_workload, False),
    "bursty": (iter_bursty_workload, True),
    "incast": (iter_incast_workload, True),
    "priority-inversion": (iter_priority_inversion_workload, False),
    "contention-hotspot": (iter_contention_hotspot_workload, True),
    "heavy-tailed-incast": (iter_heavy_tailed_incast_workload, False),
}

#: deterministic packet sets (no topology/seed parameters)
_FIXED_WORKLOAD_KINDS: Dict[str, Callable[[], Iterator[Packet]]] = {
    "figure1-packets": iter_figure1_packets,
    "figure2-packets": iter_figure2_packets_pi,
}

#: keys the trace-replay workload kind accepts in ``params``
_TRACE_PARAM_KEYS = frozenset({"path"})


def _check_replay_routable(
    packets: Iterator[Packet], topology: TwoTierTopology, path: str
) -> Iterator[Packet]:
    """Yield replayed packets, rejecting any the topology cannot route.

    Generated workloads draw their endpoints from the topology, so they are
    routable by construction; a replayed trace was recorded on *some*
    topology and deserves the explicit check — a mismatched recipe should
    fail with a clear diagnostic, not deep inside the engine.
    """
    for packet in packets:
        try:
            routable = topology.can_route(packet.source, packet.destination)
        except TopologyError:
            # can_route raises (rather than returning False) for endpoints
            # the topology has never heard of.
            routable = False
        if not routable:
            raise ScenarioError(
                f"trace {path}: packet {packet.packet_id} "
                f"({packet.source} -> {packet.destination}) is not routable on "
                f"topology {topology.name!r}; the scenario's topology spec does "
                "not match the one the trace was recorded on"
            )
        yield packet


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative recipe for an online packet sequence.

    Attributes
    ----------
    kind:
        A generator kind from :mod:`repro.workloads` (``uniform``, ``zipf``,
        ``bursty``, ``priority-inversion``, …), a deterministic packet set
        (``figure1-packets``, ``figure2-packets``) or ``trace`` — replaying
        a recorded packet trace (``params={"path": …}``, ``.jsonl`` or
        ``.csv`` as written by :mod:`repro.workloads.trace_io`), which makes
        recorded or search-discovered workloads first-class scenarios.
    params:
        Keyword arguments for the generator (primitives only).
    weights:
        Optional declarative weight-sampler spec, e.g. ``("uniform", 1, 10)``
        — see :func:`resolve_weight_sampler`.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    weights: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.kind == "trace":
            # A replayed trace is already a fixed packet sequence: it takes a
            # path, and nothing that could silently alter the replay.
            unknown = set(self.params) - _TRACE_PARAM_KEYS
            if "path" not in self.params:
                raise ScenarioError(
                    "workload kind 'trace' requires params={'path': <trace file>}"
                )
            if unknown:
                raise ScenarioError(
                    f"workload kind 'trace' got unknown params {sorted(unknown)}; "
                    f"accepted: {sorted(_TRACE_PARAM_KEYS)}"
                )
            if self.weights is not None:
                raise ScenarioError(
                    "workload kind 'trace' replays recorded weights and "
                    "accepts no weight sampler"
                )
            return
        if self.kind in _FIXED_WORKLOAD_KINDS:
            # Deterministic packet sets take no parameters; accepting (and
            # silently dropping) them would make a misconfigured scenario
            # run with the wrong workload without any diagnostic.
            if self.params or self.weights is not None:
                raise ScenarioError(
                    f"workload kind {self.kind!r} is a fixed packet set and "
                    "accepts no params or weights"
                )
            return
        if self.kind not in _WORKLOAD_KINDS:
            raise ScenarioError(
                f"unknown workload kind {self.kind!r}; expected one of "
                f"{sorted(_WORKLOAD_KINDS) + sorted(_FIXED_WORKLOAD_KINDS) + ['trace']}"
            )
        if self.weights is not None and not _WORKLOAD_KINDS[self.kind][1]:
            raise ScenarioError(
                f"workload kind {self.kind!r} does not take a weight sampler; "
                "its weights are part of the generator's own parameters"
            )

    def build_iter(
        self, topology: TwoTierTopology, seed: Optional[int] = None
    ) -> Iterator[Packet]:
        """Lazily yield the scenario's packets on ``topology``."""
        if self.kind == "trace":
            path = str(self.params["path"])
            packets = (
                iter_packet_trace(path) if path.endswith(".csv")
                else iter_packet_trace_jsonl(path)
            )
            return _check_replay_routable(packets, topology, path)
        if self.kind in _FIXED_WORKLOAD_KINDS:
            return _FIXED_WORKLOAD_KINDS[self.kind]()
        builder, takes_sampler = _WORKLOAD_KINDS[self.kind]
        kwargs = dict(self.params)
        kwargs.setdefault("seed", seed)
        if takes_sampler and self.weights is not None:
            kwargs.setdefault("weight_sampler", resolve_weight_sampler(self.weights))
        return builder(topology, **kwargs)

    def build(
        self, topology: TwoTierTopology, seed: Optional[int] = None
    ) -> List[Packet]:
        """Materialised form of :meth:`build_iter`."""
        return list(self.build_iter(topology, seed=seed))


# ---------------------------------------------------------------------- #
# policies
# ---------------------------------------------------------------------- #
def resolve_policies(names: Sequence[str], seed: Optional[int] = None) -> Dict[str, Policy]:
    """Fresh policy objects for ``names`` (in order), seeded deterministically."""
    catalogue = all_policies(seed=seed or 0, include_direct_first=True)
    unknown = [name for name in names if name not in catalogue]
    if unknown:
        raise ScenarioError(
            f"unknown policies {unknown!r}; choose from {sorted(catalogue)}"
        )
    return {name: catalogue[name] for name in names}


# ---------------------------------------------------------------------- #
# scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """One named, fully declarative experiment cell family.

    Attributes
    ----------
    name:
        Registry key and row label.
    description:
        One line shown by ``repro scenarios list``.
    topology, workload:
        The declarative recipes.
    policies:
        Policy names (see :func:`repro.baselines.all_policies`) raced on the
        scenario; in shared mode they run through ``run_multi`` over one
        arrival stream.
    speed:
        Engine speed augmentation.
    seeds:
        Cell seeds; the scenario expands into one cell per seed.
    tags:
        Free-form labels used by grids and ``list --tag``.
    max_slots:
        Engine safety bound.
    seed_key:
        Name used for topology/workload/policy seed derivation (defaults to
        ``name``).  Variant scenarios that must share *exactly* the same
        cells as a base scenario — e.g. a speed-augmentation grid running
        one instance at several speeds — set this to the base scenario's
        name, so only the engine configuration differs between variants.
    engine:
        Hot-path backend for dispatch *and* scheduling (``"indexed"``,
        ``"reference"`` or ``"vectorized"``, see
        :class:`~repro.simulation.engine.EngineConfig`): ``"indexed"``
        enables the incremental impact index and the incremental matching
        repairer, ``"vectorized"`` additionally batches the transmission
        step through numpy, ``"reference"`` the O(n) scans.  Results are
        bit-identical, so this is a performance knob, overridable per run
        through :meth:`ScenarioMatrix.to_experiment_spec`.
    faults:
        Optional explicit :class:`~repro.faults.FaultSchedule` injected into
        every cell's engine.  Only usable when the topology spec is
        deterministic enough that the named hardware exists in every cell.
    fault_seed:
        When set, each cell generates its own fault schedule from the
        materialised topology via
        :func:`~repro.faults.seeded_fault_schedule`, with a schedule seed
        derived from ``(fault_seed, seed key, cell seed)`` — deterministic
        across jobs counts and safe for seed-dependent topologies.
        Mutually exclusive with ``faults``.
    on_fail:
        Degradation policy for chunks stranded on failed hardware
        (``"requeue"``, ``"drop"`` or ``"redispatch"``, see
        :class:`~repro.simulation.engine.EngineConfig`).
    """

    name: str
    description: str
    topology: TopologySpec
    workload: WorkloadSpec
    policies: Tuple[str, ...] = ("alg", "fifo", "maxweight", "islip", "shortest-path")
    speed: float = 1.0
    seeds: Tuple[int, ...] = (0,)
    tags: Tuple[str, ...] = ()
    max_slots: int = 1_000_000
    seed_key: Optional[str] = None
    engine: str = "indexed"
    faults: Optional[FaultSchedule] = None
    fault_seed: Optional[int] = None
    on_fail: str = "requeue"

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if not self.policies:
            raise ScenarioError(f"scenario {self.name!r} lists no policies")
        if not self.seeds:
            raise ScenarioError(f"scenario {self.name!r} lists no seeds")
        if self.engine not in ENGINE_MODES:
            raise ScenarioError(
                f"scenario {self.name!r}: engine must be one of {ENGINE_MODES}, "
                f"got {self.engine!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise ScenarioError(
                f"scenario {self.name!r}: faults must be a FaultSchedule, "
                f"got {type(self.faults).__name__}"
            )
        if self.faults is not None and self.fault_seed is not None:
            raise ScenarioError(
                f"scenario {self.name!r}: faults and fault_seed are mutually "
                "exclusive"
            )
        if self.on_fail not in ON_FAIL_MODES:
            raise ScenarioError(
                f"scenario {self.name!r}: on_fail must be one of {ON_FAIL_MODES}, "
                f"got {self.on_fail!r}"
            )

    def materialise(
        self, seed: int
    ) -> Tuple[TwoTierTopology, Iterator[Packet], Dict[str, Policy]]:
        """Build one cell: ``(topology, lazy packet stream, fresh policies)``.

        All randomness derives only from (seed key, cell seed) — the seed
        key defaults to the scenario name — so a scenario's cells are
        identical no matter which matrix or grid they run in, two scenarios
        sharing a cell seed still draw independent topologies and workloads,
        and variants sharing a ``seed_key`` (the speed-augmentation grid)
        replay exactly the same instances.
        """
        key = self.seed_key or self.name
        factory = SeedSequenceFactory(seed)
        topology = self.topology.build(factory.integer_seed("topology", key))
        packets = self.workload.build_iter(
            topology, factory.integer_seed("workload", key)
        )
        policies = resolve_policies(
            self.policies, factory.integer_seed("policies", key)
        )
        return topology, packets, policies


def _summary_row(
    scenario: Scenario, seed: int, policy_name: str, result: SimulationResult
) -> Dict[str, Any]:
    """One output row of a scenario cell (plain JSON-serialisable dict)."""
    row: Dict[str, Any] = {
        "scenario": scenario.name,
        "seed": seed,
        "policy": policy_name,
        "speed": scenario.speed,
    }
    row.update(result.summary())
    return row


def _resolve_cell_faults(
    scenario: Scenario, task: ExperimentTask, topology: TwoTierTopology, seed: int
) -> Tuple[Optional[FaultSchedule], str]:
    """The ``(fault schedule, on_fail)`` pair for one cell.

    A run-level ``faults_seed`` (``repro scenarios run --faults``) overrides
    the scenario's own fault configuration; schedule seeds are derived from
    ``(faults seed, seed key, cell seed)`` so the same cell sees the same
    faults no matter which grid or jobs count runs it.
    """
    on_fail = task.params.get("on_fail") or scenario.on_fail
    fault_seed = task.params.get("faults_seed")
    if fault_seed is None:
        fault_seed = scenario.fault_seed
        if fault_seed is None:
            return scenario.faults, on_fail
    key = scenario.seed_key or scenario.name
    schedule_seed = SeedSequenceFactory(fault_seed).integer_seed("faults", key, seed)
    # Four events (vs the generator's default two) so small cells still see
    # traffic actually stranded by a failure, not just masked edges.
    return seeded_fault_schedule(topology, seed=schedule_seed, num_faults=4), on_fail


def _fault_row_fields(
    row: Dict[str, Any], faults: Optional[FaultSchedule], on_fail: str
) -> Dict[str, Any]:
    """Annotate a summary row with its fault configuration (faulted cells only).

    Fault-free rows keep the historical key set, so golden fingerprints and
    existing result files are unaffected.
    """
    if faults is not None:
        row["num_fault_events"] = len(faults)
        row["on_fail"] = on_fail
    return row


def _scenario_cell_task(task: ExperimentTask) -> List[Dict[str, Any]]:
    """Shared mode: one task per cell, all policies over one arrival stream."""
    scenario: Scenario = task.params["scenario"]
    seed: int = task.params["seed"]
    retention: str = task.params.get("retention", "full")
    engine_mode: str = task.params.get("engine") or scenario.engine
    topology, packets, policies = scenario.materialise(seed)
    faults, on_fail = _resolve_cell_faults(scenario, task, topology, seed)
    engine = SimulationEngine(
        topology,
        config=EngineConfig(
            speed=scenario.speed,
            max_slots=scenario.max_slots,
            retention=retention,
            engine=engine_mode,
            faults=faults,
            on_fail=on_fail,
        ),
    )
    results = engine.run_multi(packets, policies)
    return [
        _fault_row_fields(_summary_row(scenario, seed, name, results[name]), faults, on_fail)
        for name in policies
    ]


def _scenario_policy_task(task: ExperimentTask) -> Dict[str, Any]:
    """Per-policy mode: one task per (cell, policy), regenerating the instance."""
    scenario: Scenario = task.params["scenario"]
    seed: int = task.params["seed"]
    policy_name: str = task.params["policy_name"]
    retention: str = task.params.get("retention", "full")
    engine_mode: str = task.params.get("engine") or scenario.engine
    topology, packets, policies = scenario.materialise(seed)
    faults, on_fail = _resolve_cell_faults(scenario, task, topology, seed)
    engine = SimulationEngine(
        topology,
        policies[policy_name],
        EngineConfig(
            speed=scenario.speed,
            max_slots=scenario.max_slots,
            retention=retention,
            engine=engine_mode,
            faults=faults,
            on_fail=on_fail,
        ),
    )
    return _fault_row_fields(
        _summary_row(scenario, seed, policy_name, engine.run(packets)), faults, on_fail
    )


@dataclass(frozen=True)
class ScenarioMatrix:
    """A named collection of scenarios expanded into runnable experiment specs."""

    name: str
    scenarios: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for scenario in self.scenarios:
            if scenario.name in seen:
                raise ScenarioError(
                    f"matrix {self.name!r} contains scenario {scenario.name!r} twice"
                )
            seen.add(scenario.name)

    @property
    def num_cells(self) -> int:
        """Number of (scenario, seed) cells in the matrix."""
        return sum(len(s.seeds) for s in self.scenarios)

    @property
    def num_runs(self) -> int:
        """Number of (scenario, seed, policy) simulation runs in the matrix."""
        return sum(len(s.seeds) * len(s.policies) for s in self.scenarios)

    def cells(self) -> List[Tuple[Scenario, int]]:
        """Every (scenario, seed) cell, in declaration order."""
        return [(s, seed) for s in self.scenarios for seed in s.seeds]

    def to_experiment_spec(
        self,
        mode: str = "shared",
        retention: str = "full",
        engine: Optional[str] = None,
        faults_seed: Optional[int] = None,
        on_fail: Optional[str] = None,
    ) -> ExperimentSpec:
        """Expand the matrix into an :class:`ExperimentSpec`.

        ``mode="shared"`` (default) makes one task per cell and evaluates all
        of the cell's policies in a single ``run_multi`` pass;
        ``mode="per-policy"`` makes one task per (cell, policy), each
        rebuilding topology and workload — same rows, the pre-scenario
        architecture.  ``engine`` overrides every scenario's hot-path backend
        for dispatch and scheduling (``None`` keeps each scenario's own).
        ``faults_seed`` injects a deterministic per-cell fault schedule into
        every cell (overriding any scenario-level fault configuration) and
        ``on_fail`` overrides the degradation policy.  Row order and
        contents are identical across modes, engines and jobs counts.
        """
        if mode not in SCENARIO_MODES:
            raise ScenarioError(f"mode must be one of {SCENARIO_MODES}, got {mode!r}")
        if engine is not None and engine not in ENGINE_MODES:
            raise ScenarioError(f"engine must be one of {ENGINE_MODES}, got {engine!r}")
        if on_fail is not None and on_fail not in ON_FAIL_MODES:
            raise ScenarioError(
                f"on_fail must be one of {ON_FAIL_MODES}, got {on_fail!r}"
            )
        common = {"retention": retention, "engine": engine}
        if faults_seed is not None:
            common["faults_seed"] = faults_seed
        if on_fail is not None:
            common["on_fail"] = on_fail
        if mode == "shared":
            grid = [
                {"scenario": scenario, "seed": seed, **common}
                for scenario, seed in self.cells()
            ]
            return ExperimentSpec(
                name=f"scenarios-{self.name}", task_fn=_scenario_cell_task, grid=grid
            )
        grid = [
            {
                "scenario": scenario,
                "seed": seed,
                "policy_name": policy_name,
                **common,
            }
            for scenario, seed in self.cells()
            for policy_name in scenario.policies
        ]
        return ExperimentSpec(
            name=f"scenarios-{self.name}", task_fn=_scenario_policy_task, grid=grid
        )

    def run(
        self,
        jobs: int = 1,
        chunksize: int = 1,
        mode: str = "shared",
        retention: str = "full",
        engine: Optional[str] = None,
        output_path: Optional[str] = None,
        faults_seed: Optional[int] = None,
        on_fail: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Run every cell and return one row per (scenario, seed, policy)."""
        return run_experiment(
            self.to_experiment_spec(
                mode=mode, retention=retention, engine=engine,
                faults_seed=faults_seed, on_fail=on_fail,
            ),
            jobs=jobs,
            chunksize=chunksize,
            output_path=output_path,
        )
