"""Measure the per-slot hot paths and append to ``BENCH_dispatch.json``.

Establishes the performance trajectory of the engine's two hot paths on a
dense-contention cell (the E15/E16 benchmarks' receiver-hotspot fabric):

* dispatch — the reference O(n) adjacency scan vs the incremental impact
  index, plus ``run_multi`` with four impact-sharing ALG lanes vs PR 3's
  per-lane dispatch;
* scheduling — the from-scratch greedy stable-matching pass vs the
  incremental matching repairer, including a phase breakdown (time inside
  ``dispatch`` vs ``select_matching`` vs ``transmit`` vs the bookkeeping
  remainder) from a separate instrumented run;
* transmission — the per-edge budget walk of the indexed engine vs the
  numpy-batched vectorized backend, compared on the transmit phase of two
  instrumented runs over the E17 saturated-pairs cell (few node-disjoint
  hot edges, each with a very deep pending queue).

Every configuration is checked bit-identical against the reference before
its timing is trusted.

``BENCH_dispatch.json`` holds a ``history`` list with one point per
recording, so successive PRs can compare packets/sec on the same seeded
instance; each point's ``machine`` block says which hardware produced it
(absolute numbers move between machines — the speedup ratios are the
portable signal).  A pre-history single-point file is migrated in place.

Usage::

    PYTHONPATH=src python scripts/bench_dispatch.py [--packets N] [--racks N]
        [--multi-packets N] [--seed N] [--output BENCH_dispatch.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

# The history-file rules and timed-run helpers moved to the importable
# benchmark institution (``repro.bench``, PR 9); this script keeps its CLI
# and full multi-section payload shape on top of them.  The re-exports stay
# because external callers (and tests) import them from here by file path.
from repro.bench import (  # noqa: F401  (re-exported API)
    NUM_LANES,
    build_cell,
    build_saturated_cell,
    load_history,
    machine_stamp,
    time_multi,
    time_single,
    time_single_phases,
)

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=5000)
    parser.add_argument("--multi-packets", type=int, default=3000)
    parser.add_argument("--scheduler-packets", type=int, default=8000)
    parser.add_argument("--scheduler-delay", type=int, default=4)
    parser.add_argument("--transmit-packets", type=int, default=10000)
    parser.add_argument("--racks", type=int, default=64)
    parser.add_argument("--seed", type=int, default=15)
    parser.add_argument("--output", default=str(REPO / "BENCH_dispatch.json"))
    args = parser.parse_args()

    topology, packets, gen_time = build_cell(args.racks, args.packets, args.seed)
    print(f"cell: {args.racks} racks, {len(packets)} packets "
          f"(generated in {gen_time:.2f}s)")

    reference_time, reference_summary = time_single(topology, packets, "reference")
    indexed_time, indexed_summary = time_single(topology, packets, "indexed")
    if indexed_summary != reference_summary:
        print("FATAL: indexed summary diverged from the reference scan",
              file=sys.stderr)
        return 1
    single_speedup = reference_time / indexed_time
    print(f"single ALG run : reference {reference_time:.2f}s | indexed "
          f"{indexed_time:.2f}s | speedup {single_speedup:.1f}x")

    # Scheduler hot path, on a denser cell (longer edge delay -> d(e) chunks
    # per packet): indexed dispatch with the from-scratch greedy matching
    # pass ("flat") vs the incremental matching repairer.  The end-to-end
    # ratio isolates the scheduler change because both configurations share
    # the impact-index dispatch.
    sched_topology, sched_packets, sched_gen = build_cell(
        args.racks, args.scheduler_packets, args.seed, delay=args.scheduler_delay
    )
    print(f"scheduler cell: {args.racks} racks, {len(sched_packets)} packets, "
          f"edge delay {args.scheduler_delay} (generated in {sched_gen:.2f}s)")
    incr_time, incr_summary = time_single(sched_topology, sched_packets, "indexed")
    flat_time, flat_summary = time_single(
        sched_topology, sched_packets, "indexed", incremental=False
    )
    if flat_summary != incr_summary:
        print("FATAL: flat-scheduler summary diverged from the incremental repairer",
              file=sys.stderr)
        return 1
    scheduler_e2e_speedup = flat_time / incr_time
    print(f"scheduler e2e  : flat {flat_time:.2f}s | incremental "
          f"{incr_time:.2f}s | speedup {scheduler_e2e_speedup:.1f}x")

    # Instrumented runs split each total into dispatch / scheduler /
    # bookkeeping; the phase ratio is computed timed-vs-timed so both sides
    # carry the identical (tiny) instrumentation overhead.
    flat_total, flat_phases, flat_timed_summary = time_single_phases(
        sched_topology, sched_packets, "indexed", incremental=False
    )
    inc_total, inc_phases, inc_timed_summary = time_single_phases(
        sched_topology, sched_packets, "indexed", incremental=True
    )
    if flat_timed_summary != incr_summary or inc_timed_summary != incr_summary:
        print("FATAL: instrumented run diverged from the untimed runs", file=sys.stderr)
        return 1
    scheduler_phase_speedup = flat_phases.scheduler_s / inc_phases.scheduler_s
    print(f"scheduler phase: flat {flat_phases.scheduler_s:.2f}s | incremental "
          f"{inc_phases.scheduler_s:.2f}s | speedup {scheduler_phase_speedup:.1f}x")

    # Transmission hot path, on the E17 saturated-pairs cell (few hot edges,
    # each with a very deep queue — the worst case for the indexed engine's
    # per-edge queue snapshot): the indexed budget walk vs the numpy-batched
    # vectorized backend.  Both sides are instrumented runs, so the phase
    # ratio carries identical timing overhead.
    trans_topology, trans_packets, trans_gen = build_saturated_cell(
        args.racks, args.transmit_packets, args.seed, delay=args.scheduler_delay
    )
    print(f"transmit cell : {args.racks} racks, 8 saturated pairs, "
          f"{len(trans_packets)} packets, edge delay {args.scheduler_delay} "
          f"(generated in {trans_gen:.2f}s)")
    idx_total, idx_phases, idx_timed_summary = time_single_phases(
        trans_topology, trans_packets, "indexed", incremental=True
    )
    vec_total, vec_phases, vec_timed_summary = time_single_phases(
        trans_topology, trans_packets, "vectorized", incremental=True
    )
    if vec_timed_summary != idx_timed_summary:
        print("FATAL: vectorized-backend summary diverged from the indexed engine",
              file=sys.stderr)
        return 1
    transmit_phase_speedup = idx_phases.transmit_s / vec_phases.transmit_s
    transmit_e2e_speedup = idx_total / vec_total
    print(f"transmit phase : indexed {idx_phases.transmit_s:.2f}s | vectorized "
          f"{vec_phases.transmit_s:.2f}s | speedup {transmit_phase_speedup:.1f}x "
          f"(e2e {transmit_e2e_speedup:.1f}x)")

    _, multi_packets, _ = build_cell(args.racks, args.multi_packets, args.seed)
    per_lane_time, per_lane_summaries, _ = time_multi(
        topology, multi_packets, "reference", share=False
    )
    shared_time, shared_summaries, memo_stats = time_multi(
        topology, multi_packets, "indexed", share=True
    )
    if shared_summaries != per_lane_summaries:
        print("FATAL: shared-dispatch lanes diverged from per-lane dispatch",
              file=sys.stderr)
        return 1
    multi_speedup = per_lane_time / shared_time
    print(f"run_multi x{NUM_LANES}  : per-lane {per_lane_time:.2f}s | shared "
          f"{shared_time:.2f}s | speedup {multi_speedup:.1f}x | memo {memo_stats}")

    payload = {
        "benchmark": "dispatch-hot-path",
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_stamp(),
        "cell": {
            "topology": "projector",
            "num_racks": args.racks,
            "lasers_per_rack": 2,
            "photodetectors_per_rack": 2,
            "workload": "contention-hotspot (side=receiver, hot_fraction=0.95, "
                        "arrival_rate=8.0, uniform weights 1..10)",
            "seed": args.seed,
        },
        "phases": {
            "workload_generation_s": round(gen_time, 4),
            "single_reference_s": round(reference_time, 4),
            "single_indexed_s": round(indexed_time, 4),
            "multi_per_lane_reference_s": round(per_lane_time, 4),
            "multi_shared_indexed_s": round(shared_time, 4),
        },
        "single_run": {
            "num_packets": len(packets),
            "packets_per_s_reference": round(len(packets) / reference_time, 1),
            "packets_per_s_indexed": round(len(packets) / indexed_time, 1),
            "speedup": round(single_speedup, 2),
            "bit_identical": True,
        },
        "run_multi": {
            "num_packets": len(multi_packets),
            "num_lanes": NUM_LANES,
            "speedup_vs_per_lane": round(multi_speedup, 2),
            "memo": memo_stats,
            "bit_identical": True,
        },
        "scheduler": {
            "num_packets": len(sched_packets),
            "edge_delay": args.scheduler_delay,
            "flat_s": round(flat_time, 4),
            "incremental_s": round(incr_time, 4),
            "e2e_speedup": round(scheduler_e2e_speedup, 2),
            "phase_breakdown_flat": flat_phases.breakdown(flat_total),
            "phase_breakdown_incremental": inc_phases.breakdown(inc_total),
            "phase_speedup": round(scheduler_phase_speedup, 2),
            "bit_identical": True,
        },
        "transmit": {
            "num_packets": len(trans_packets),
            "edge_delay": args.scheduler_delay,
            "workload": "saturated-pairs (num_pairs=8, hot_fraction=0.95, "
                        "arrival_rate=8.0, uniform weights 1..10)",
            "indexed_transmit_s": round(idx_phases.transmit_s, 4),
            "vectorized_transmit_s": round(vec_phases.transmit_s, 4),
            "phase_speedup": round(transmit_phase_speedup, 2),
            "e2e_speedup": round(transmit_e2e_speedup, 2),
            "phase_breakdown_vectorized": vec_phases.breakdown(vec_total),
            "bit_identical": True,
        },
    }

    output = Path(args.output)
    try:
        history = load_history(output)
    except ValueError as exc:
        print(f"FATAL: refusing to overwrite benchmark history: {exc}",
              file=sys.stderr)
        return 1
    payload.pop("benchmark", None)
    history.append(payload)
    output.write_text(
        json.dumps({"benchmark": "dispatch-hot-path", "history": history}, indent=2)
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {output} ({len(history)} history points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
