"""Measure the dispatch hot path and write ``BENCH_dispatch.json``.

Establishes the performance trajectory of the per-packet dispatch cost on a
dense-contention cell (the E15 benchmark's receiver-hotspot fabric): the
reference O(n) adjacency scan vs the incremental impact index, plus
``run_multi`` with four impact-sharing ALG lanes vs PR 3's per-lane
dispatch.  Every configuration is checked bit-identical against the
reference before its timing is trusted.

The JSON is committed so successive PRs can compare packets/sec on the same
seeded instance; the ``machine`` block says which hardware produced each
measurement (absolute numbers move between machines — the speedup ratios are
the portable signal).

Usage::

    PYTHONPATH=src python scripts/bench_dispatch.py [--packets N] [--racks N]
        [--multi-packets N] [--seed N] [--output BENCH_dispatch.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_contention_hotspot_workload

REPO = Path(__file__).resolve().parent.parent
NUM_LANES = 4


def build_cell(num_racks: int, num_packets: int, seed: int):
    """The seeded dense-contention cell shared with benchmark E15."""
    start = time.perf_counter()
    topology = projector_fabric(
        num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=num_packets,
            side="receiver",
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets, time.perf_counter() - start


def time_single(topology, packets, engine_mode: str):
    """One ALG run; returns (seconds, summary)."""
    start = time.perf_counter()
    result = simulate(
        topology,
        OpportunisticLinkScheduler(),
        packets,
        engine=engine_mode,
        max_slots=10_000_000,
    )
    return time.perf_counter() - start, result.summary()


def time_multi(topology, packets, engine_mode: str, share: bool):
    """Four ALG lanes through run_multi; returns (seconds, summaries, memo stats)."""
    engine = SimulationEngine(
        topology,
        config=EngineConfig(
            engine=engine_mode, share_dispatch=share, max_slots=10_000_000
        ),
    )
    lanes = {f"alg{i}": OpportunisticLinkScheduler() for i in range(NUM_LANES)}
    start = time.perf_counter()
    results = engine.run_multi(packets, lanes)
    elapsed = time.perf_counter() - start
    summaries = {name: res.summary() for name, res in results.items()}
    return elapsed, summaries, engine.last_shared_dispatch_stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=5000)
    parser.add_argument("--multi-packets", type=int, default=3000)
    parser.add_argument("--racks", type=int, default=64)
    parser.add_argument("--seed", type=int, default=15)
    parser.add_argument("--output", default=str(REPO / "BENCH_dispatch.json"))
    args = parser.parse_args()

    topology, packets, gen_time = build_cell(args.racks, args.packets, args.seed)
    print(f"cell: {args.racks} racks, {len(packets)} packets "
          f"(generated in {gen_time:.2f}s)")

    reference_time, reference_summary = time_single(topology, packets, "reference")
    indexed_time, indexed_summary = time_single(topology, packets, "indexed")
    if indexed_summary != reference_summary:
        print("FATAL: indexed summary diverged from the reference scan",
              file=sys.stderr)
        return 1
    single_speedup = reference_time / indexed_time
    print(f"single ALG run : reference {reference_time:.2f}s | indexed "
          f"{indexed_time:.2f}s | speedup {single_speedup:.1f}x")

    _, multi_packets, _ = build_cell(args.racks, args.multi_packets, args.seed)
    per_lane_time, per_lane_summaries, _ = time_multi(
        topology, multi_packets, "reference", share=False
    )
    shared_time, shared_summaries, memo_stats = time_multi(
        topology, multi_packets, "indexed", share=True
    )
    if shared_summaries != per_lane_summaries:
        print("FATAL: shared-dispatch lanes diverged from per-lane dispatch",
              file=sys.stderr)
        return 1
    multi_speedup = per_lane_time / shared_time
    print(f"run_multi x{NUM_LANES}  : per-lane {per_lane_time:.2f}s | shared "
          f"{shared_time:.2f}s | speedup {multi_speedup:.1f}x | memo {memo_stats}")

    payload = {
        "benchmark": "dispatch-hot-path",
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "cpu_count": os.cpu_count(),
        },
        "cell": {
            "topology": "projector",
            "num_racks": args.racks,
            "lasers_per_rack": 2,
            "photodetectors_per_rack": 2,
            "workload": "contention-hotspot (side=receiver, hot_fraction=0.95, "
                        "arrival_rate=8.0, uniform weights 1..10)",
            "seed": args.seed,
        },
        "phases": {
            "workload_generation_s": round(gen_time, 4),
            "single_reference_s": round(reference_time, 4),
            "single_indexed_s": round(indexed_time, 4),
            "multi_per_lane_reference_s": round(per_lane_time, 4),
            "multi_shared_indexed_s": round(shared_time, 4),
        },
        "single_run": {
            "num_packets": len(packets),
            "packets_per_s_reference": round(len(packets) / reference_time, 1),
            "packets_per_s_indexed": round(len(packets) / indexed_time, 1),
            "speedup": round(single_speedup, 2),
            "bit_identical": True,
        },
        "run_multi": {
            "num_packets": len(multi_packets),
            "num_lanes": NUM_LANES,
            "speedup_vs_per_lane": round(multi_speedup, 2),
            "memo": memo_stats,
            "bit_identical": True,
        },
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
