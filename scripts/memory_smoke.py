#!/usr/bin/env python
"""Memory smoke check for the streaming data path (CI gate).

Runs a 50k-packet simulation in ``retention="aggregate"`` mode with the
workload generated lazily, then fails if the process's peak RSS (via
``resource.getrusage``) exceeds a fixed budget.  The budget covers the
interpreter plus numpy/scipy imports with generous headroom; an O(n)
regression in the streaming path (e.g. a retained per-packet record) blows
straight through it at this packet count.

Environment overrides:

* ``REPRO_SMOKE_PACKETS``   — packet count (default 50000)
* ``REPRO_SMOKE_BUDGET_MB`` — peak-RSS budget in MiB (default 450)
"""

from __future__ import annotations

import os
import resource
import sys
import time


def main() -> int:
    num_packets = int(os.environ.get("REPRO_SMOKE_PACKETS", "50000"))
    budget_mb = float(os.environ.get("REPRO_SMOKE_BUDGET_MB", "450"))

    from repro.core import OpportunisticLinkScheduler
    from repro.network import projector_fabric
    from repro.simulation import simulate
    from repro.workloads import iter_uniform_random_workload, uniform_weights

    topo = projector_fabric(
        num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=51
    )
    stream = iter_uniform_random_workload(
        topo,
        num_packets,
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=1.5,
        seed=52,
    )
    start = time.perf_counter()
    result = simulate(topo, OpportunisticLinkScheduler(), stream, retention="aggregate")
    elapsed = time.perf_counter() - start

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_mb = rss / 1024 if sys.platform != "darwin" else rss / (1024 * 1024)

    ok = result.all_delivered and len(result) == num_packets
    print(
        f"memory smoke: {num_packets} packets in {elapsed:.1f}s, "
        f"all delivered: {result.all_delivered}, "
        f"total weighted latency: {result.total_weighted_latency:.6g}, "
        f"peak RSS: {peak_mb:.1f} MiB (budget {budget_mb:.0f} MiB)"
    )
    if not ok:
        print("memory smoke FAILED: simulation did not deliver every packet")
        return 1
    if peak_mb > budget_mb:
        print(
            f"memory smoke FAILED: peak RSS {peak_mb:.1f} MiB exceeds the "
            f"{budget_mb:.0f} MiB budget — the streaming path is retaining "
            "per-packet state"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
