"""Approximate the test suite's line coverage of ``src/repro`` without coverage.py.

CI pins ``pytest --cov=repro --cov-fail-under`` at a measured baseline; this
script produces that baseline in environments where ``pytest-cov`` is not
installed.  It measures the same quantity coverage.py calls *line coverage*:

* the executable-line universe comes from compiling every module and
  collecting the line numbers of all nested code objects (``co_lines``);
* the executed set is collected with a :func:`sys.settrace` hook restricted
  to frames whose code lives under ``src/repro`` (other frames are skipped,
  which keeps the slowdown tolerable).

Numbers are a close approximation of coverage.py, not a replica: lines run
only inside ``multiprocessing`` workers (e.g. the ``jobs=2`` runner tests)
are missed here, and docstring/annotation bookkeeping differs by a hair.
Pin CI a few points *below* the printed total.

Usage::

    PYTHONPATH=src python scripts/measure_coverage.py [pytest args, default: tests/ -q]
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Set

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def executable_lines(path: Path) -> Set[int]:
    """Line numbers of every executable line of one module (coverage.py's universe)."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: Set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(const for const in obj.co_consts if hasattr(const, "co_lines"))
    # The module docstring's implicit assignment is reported on line 1/its own
    # line by co_lines but never "executed" per coverage.py; both tools agree
    # once the module is imported, so no correction is applied here.
    return lines


def main() -> int:
    import pytest

    universe: Dict[str, Set[int]] = {
        str(path): executable_lines(path) for path in sorted(SRC.rglob("*.py"))
    }
    executed: Dict[str, Set[int]] = {filename: set() for filename in universe}
    prefix = str(SRC)

    def local_trace(frame, event, _arg):
        if event == "line":
            hit = executed.get(frame.f_code.co_filename)
            if hit is not None:
                hit.add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, _arg):
        if event == "call" and frame.f_code.co_filename.startswith(prefix):
            return local_trace
        return None

    argv = sys.argv[1:] or ["tests/", "-q", "-p", "no:cacheprovider"]
    sys.settrace(global_trace)
    try:
        exit_code = pytest.main(argv)
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"pytest exited with {exit_code}; coverage numbers are meaningless")
        return int(exit_code)

    total_lines = total_hit = 0
    print(f"\n{'module':<58} {'lines':>6} {'hit':>6} {'cover':>7}")
    for filename in sorted(universe):
        lines = universe[filename]
        hit = executed[filename] & lines
        total_lines += len(lines)
        total_hit += len(hit)
        percent = 100.0 * len(hit) / len(lines) if lines else 100.0
        rel = Path(filename).relative_to(REPO)
        print(f"{str(rel):<58} {len(lines):>6} {len(hit):>6} {percent:>6.1f}%")
    total = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"\nTOTAL approximate line coverage: {total:.2f}% "
          f"({total_hit}/{total_lines} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
